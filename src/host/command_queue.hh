/**
 * @file
 * Per-thread command queues between the F4T library and FtEngine
 * (Section 4.1.1): 1024-entry rings in hugepage memory, each entry a
 * 16 B command (8 B in the reduced-command experiment of Fig. 16a).
 *
 * The model keeps real Command structures in the ring and charges the
 * wire size separately through the PCIe model; occupancy and
 * full-queue backpressure behave exactly like the hardware rings.
 */

#ifndef F4T_HOST_COMMAND_QUEUE_HH
#define F4T_HOST_COMMAND_QUEUE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "tcp/tcb.hh"

namespace f4t::host
{

/** Command opcodes, both directions. */
enum class CmdOp : std::uint8_t
{
    // host -> engine
    listen,     ///< arg0 = local port, arg1 = queue id
    connect,    ///< arg0 = remote ip, arg1 = remote port << 16 | queue
    send,       ///< arg0 = new request pointer (absolute seq)
    recv,       ///< arg0 = new read pointer (absolute seq)
    close,      ///< graceful close
    // engine -> host
    connected,  ///< arg0 = initial tx pointer (iss + 1)
    accepted,   ///< arg0 = initial tx pointer, arg1 = local port
    acked,      ///< arg0 = new acknowledged pointer
    received,   ///< arg0 = new in-order receive pointer
    peerClosed,
    closed,
    reset,
};

const char *toString(CmdOp op);

/** A queue entry. The modelled wire footprint is CommandQueue's
 *  commandBytes, not sizeof(Command). */
struct Command
{
    CmdOp op = CmdOp::send;
    tcp::FlowId flow = tcp::invalidFlowId;
    std::uint32_t arg0 = 0;
    std::uint32_t arg1 = 0;
    /** Causal-trace token (not part of the modelled wire footprint;
     *  empty struct when tracing is compiled out). */
    [[no_unique_address]] sim::ctrace::Token trace;
};

/** One direction of a queue pair. */
class CommandQueue
{
  public:
    explicit CommandQueue(std::size_t depth = 1024,
                          std::size_t command_bytes = 16)
        : depth_(depth), commandBytes_(command_bytes)
    {}

    std::size_t depth() const { return depth_; }
    std::size_t commandBytes() const { return commandBytes_; }
    std::size_t size() const { return ring_.size(); }
    bool empty() const { return ring_.empty(); }
    bool full() const { return ring_.size() >= depth_; }

    /**
     * Enqueue a command. @return false when the ring was already at
     * its nominal depth — the caller treats that as backpressure (the
     * submission side retries; the completion side counts it). The
     * entry is still stored: the model is elastic so no command is
     * ever lost, only accounted as having overflowed.
     */
    bool
    push(const Command &cmd)
    {
        bool had_room = !full();
        ring_.push_back(cmd);
        return had_room;
    }

    Command
    pop()
    {
        f4t_assert(!ring_.empty(), "pop from empty command queue");
        Command cmd = ring_.front();
        ring_.pop_front();
        return cmd;
    }

    /** Pop up to @p max commands (batched DMA fetch). */
    std::vector<Command>
    popBatch(std::size_t max)
    {
        std::size_t n = ring_.size() < max ? ring_.size() : max;
        std::vector<Command> batch(ring_.begin(),
                                   ring_.begin() +
                                       static_cast<std::ptrdiff_t>(n));
        ring_.erase(ring_.begin(),
                    ring_.begin() + static_cast<std::ptrdiff_t>(n));
        return batch;
    }

  private:
    std::size_t depth_;
    std::size_t commandBytes_;
    std::deque<Command> ring_;
};

/**
 * A per-thread queue pair plus doorbell state: the submission queue
 * (host to engine) and completion queue (engine to host).
 */
struct QueuePair
{
    QueuePair(std::size_t depth, std::size_t command_bytes)
        : sq(depth, command_bytes), cq(depth, command_bytes)
    {}

    CommandQueue sq;
    CommandQueue cq;
    /** Host rang the hardware doorbell; engine fetch pending. */
    bool hwDoorbell = false;
    /** Engine wrote the software doorbell; completions pending. */
    bool swDoorbell = false;
};

} // namespace f4t::host

#endif // F4T_HOST_COMMAND_QUEUE_HH
