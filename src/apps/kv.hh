/**
 * @file
 * Memcached-style key/value application model.
 *
 * The HTTP pair (http.hh) reproduces the paper's Nginx/wrk benchmark;
 * this is the other canonical datacenter RPC shape: small fixed binary
 * headers, GETs whose *response* carries the value bytes and SETs
 * whose *request* does, heavy-tailed value sizes, many small
 * operations per connection. The open-loop generator (src/load)
 * drives it from Poisson/log-normal arrival processes.
 *
 * The protocol is a 16-byte fixed binary header, explicitly
 * little-endian encoded so the byte stream is identical on every
 * build:
 *
 *   magic      u32   0x46344b56 ("F4KV")
 *   op         u8    0 = GET, 1 = SET
 *   flags      u8    bit 0: response
 *   reserved   u16   0
 *   key        u32   identifies the value (and the oracle stream)
 *   valueBytes u32   GET: requested/returned size; SET: payload size
 *
 * A GET request is a bare header; the response echoes the header with
 * the response flag and appends valueBytes of deterministic pattern
 * payload. A SET request is a header plus valueBytes of payload; the
 * ack is a bare header. The server synthesizes GET values from the
 * request (size is the client's to choose), so no store is modeled —
 * the byte streams, not the data structure, are what the transport
 * experiments need.
 *
 * Ledger integration: value payloads can be registered with a
 * net::StreamOracle — SET request bytes on kvSetStream(key), GET
 * response bytes on kvGetStream(key) — giving the serial-vs-parallel
 * differential a byte-exact application-layer invariant that is
 * independent of packetization and fault-recovery timing.
 */

#ifndef F4T_APPS_KV_HH
#define F4T_APPS_KV_HH

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "apps/socket_api.hh"
#include "net/stream_oracle.hh"
#include "sim/stats.hh"

namespace f4t::apps
{

constexpr std::uint32_t kvMagic = 0x46344b56; // "F4KV"
constexpr std::size_t kvHeaderBytes = 16;

enum class KvOp : std::uint8_t
{
    get = 0,
    set = 1,
};

struct KvHeader
{
    KvOp op = KvOp::get;
    bool response = false;
    std::uint32_t key = 0;
    std::uint32_t valueBytes = 0;
};

/** Append the 16-byte wire encoding of @p header to @p out. */
void kvEncode(const KvHeader &header, std::vector<std::uint8_t> &out);

/** Decode 16 header bytes; false when the magic doesn't match. */
bool kvDecode(std::span<const std::uint8_t> bytes, KvHeader &out);

/** Deterministic value byte at @p offset of key @p key's stream. */
inline std::uint8_t
kvValueByte(std::uint32_t key, std::uint64_t offset)
{
    return static_cast<std::uint8_t>((offset * 131 + key * 29 + 17) & 0xff);
}

/** Oracle stream ids: one simplex stream per key per direction. */
inline net::StreamOracle::StreamId
kvSetStream(std::uint32_t key)
{
    return std::uint64_t{key} * 2;
}

inline net::StreamOracle::StreamId
kvGetStream(std::uint32_t key)
{
    return std::uint64_t{key} * 2 + 1;
}

struct KvServerConfig
{
    std::uint16_t port = 11211;
    /** Host cycles charged per parsed operation. */
    double cyclesPerGet = 450.0;
    double cyclesPerSet = 600.0;
    /** Optional byte-exact ledger for value payloads. */
    net::StreamOracle *oracle = nullptr;
};

class KvServerApp
{
  public:
    KvServerApp(SocketApi &api, const KvServerConfig &config);

    void start();

    std::uint64_t gets() const { return gets_; }
    std::uint64_t sets() const { return sets_; }
    std::uint64_t valueBytesIn() const { return valueBytesIn_; }
    std::uint64_t valueBytesOut() const { return valueBytesOut_; }
    std::uint64_t protocolErrors() const { return protocolErrors_; }
    /** Per-key SET value bytes consumed (for replay equivalence). */
    const std::map<std::uint32_t, std::uint64_t> &setBytesByKey() const
    {
        return setBytesByKey_;
    }

  private:
    struct Conn
    {
        /** Partial request header bytes. */
        std::vector<std::uint8_t> header;
        KvHeader request;
        bool haveHeader = false;
        std::uint32_t valueRemaining = 0; ///< SET payload left to consume
        /** Pending response bytes not yet accepted by send(). */
        std::vector<std::uint8_t> out;
        std::size_t outSent = 0;
        /** GET-response payload offset per key (oracle/pattern). */
        std::map<std::uint32_t, std::uint64_t> getOffset;
        std::map<std::uint32_t, std::uint64_t> setOffset;
    };

    void onData(SocketApi::ConnId conn);
    void process(SocketApi::ConnId conn, Conn &state);
    void respond(SocketApi::ConnId conn, Conn &state,
                 const KvHeader &request);
    void flush(SocketApi::ConnId conn, Conn &state);

    SocketApi &api_;
    KvServerConfig config_;
    std::map<SocketApi::ConnId, Conn> conns_;
    std::vector<std::uint8_t> scratch_;
    std::uint64_t gets_ = 0;
    std::uint64_t sets_ = 0;
    std::uint64_t valueBytesIn_ = 0;
    std::uint64_t valueBytesOut_ = 0;
    std::uint64_t protocolErrors_ = 0;
    std::map<std::uint32_t, std::uint64_t> setBytesByKey_;
};

} // namespace f4t::apps

#endif // F4T_APPS_KV_HH
