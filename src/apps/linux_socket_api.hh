/**
 * @file
 * SocketApi adapter over the Linux baseline host (one per thread /
 * core).
 *
 * Readiness notifications cross the kernel-to-userspace boundary: the
 * adapter delays them by the host's wakeup jitter sample (Fig. 12) and
 * serializes them behind the owning core. An optional per-request
 * penalty models the low-locality slowdown of many tiny sockets
 * (Fig. 8b round-robin, Fig. 13 echo).
 */

#ifndef F4T_APPS_LINUX_SOCKET_API_HH
#define F4T_APPS_LINUX_SOCKET_API_HH

#include "apps/socket_api.hh"
#include "baseline/linux_host.hh"

namespace f4t::apps
{

class LinuxSocketApi : public SocketApi
{
  public:
    LinuxSocketApi(sim::Simulation &sim, baseline::LinuxHost &host,
                   std::size_t core_index,
                   double per_request_penalty = 0.0)
        : sim_(sim), host_(host), coreIndex_(core_index),
          penalty_(per_request_penalty)
    {}

    void
    setHandlers(const Handlers &handlers) override
    {
        handlers_ = handlers;
        tcp::SoftTcpCallbacks callbacks;
        callbacks.onConnected = [this](tcp::SoftConnId id) {
            deliver([this, id] {
                if (handlers_.onConnected)
                    handlers_.onConnected(static_cast<ConnId>(id));
            });
        };
        callbacks.onAccept = [this](tcp::SoftConnId id,
                                    std::uint16_t port) {
            deliver([this, id, port] {
                if (handlers_.onAccepted)
                    handlers_.onAccepted(static_cast<ConnId>(id), port);
            });
        };
        callbacks.onWritable = [this](tcp::SoftConnId id) {
            deliver([this, id] {
                if (handlers_.onWritable)
                    handlers_.onWritable(static_cast<ConnId>(id));
            });
        };
        callbacks.onReadable = [this](tcp::SoftConnId id, std::size_t) {
            deliver([this, id] {
                if (handlers_.onReadable) {
                    handlers_.onReadable(
                        static_cast<ConnId>(id),
                        stack().readable(id));
                }
            });
        };
        callbacks.onPeerClosed = [this](tcp::SoftConnId id) {
            deliver([this, id] {
                if (handlers_.onPeerClosed)
                    handlers_.onPeerClosed(static_cast<ConnId>(id));
            });
        };
        callbacks.onClosed = [this](tcp::SoftConnId id) {
            deliver([this, id] {
                if (handlers_.onClosed)
                    handlers_.onClosed(static_cast<ConnId>(id));
            });
        };
        callbacks.onReset = [this](tcp::SoftConnId id) {
            deliver([this, id] {
                if (handlers_.onReset)
                    handlers_.onReset(static_cast<ConnId>(id));
            });
        };
        stack().setCallbacks(callbacks);
    }

    void listen(std::uint16_t port) override { stack().listen(port); }

    ConnId
    connect(net::Ipv4Address ip, std::uint16_t port) override
    {
        return static_cast<ConnId>(stack().connect(ip, port));
    }

    std::size_t
    send(ConnId conn, std::span<const std::uint8_t> data) override
    {
        chargePenalty();
        return stack().send(static_cast<tcp::SoftConnId>(conn), data);
    }

    std::size_t
    recv(ConnId conn, std::span<std::uint8_t> out) override
    {
        chargePenalty();
        return stack().recv(static_cast<tcp::SoftConnId>(conn), out);
    }

    std::size_t
    readable(ConnId conn) override
    {
        return stack().readable(static_cast<tcp::SoftConnId>(conn));
    }

    std::size_t
    writable(ConnId conn) override
    {
        return stack().writable(static_cast<tcp::SoftConnId>(conn));
    }

    void
    close(ConnId conn) override
    {
        stack().close(static_cast<tcp::SoftConnId>(conn));
    }

    host::CpuCore &core() override { return host_.core(coreIndex_); }
    sim::Simulation &simulation() override { return sim_; }

    tcp::SoftTcpStack &stack() { return host_.stack(coreIndex_); }

  private:
    void
    chargePenalty()
    {
        if (penalty_ > 0) {
            core().charge(tcp::CostCategory::kernelOther, penalty_);
        }
    }

    /** Jittered, core-serialized upcall delivery. */
    void
    deliver(sim::SmallFunction fn)
    {
        sim::Tick delay = host_.jitterDelay();
        sim::Tick when = sim_.now() + delay;
        sim::Tick busy = core().busyUntil();
        if (busy > when)
            when = busy;
        // One epoll loop per thread: upcalls never overtake each other,
        // however the jitter samples land (an onReadable delivered
        // before its connection's onAccepted would strand the data).
        if (when < lastUpcallAt_)
            when = lastUpcallAt_;
        lastUpcallAt_ = when;
        sim_.queue().scheduleCallback(when, "linuxapi.deliver",
                                      std::move(fn));
    }

    sim::Simulation &sim_;
    baseline::LinuxHost &host_;
    std::size_t coreIndex_;
    double penalty_;
    sim::Tick lastUpcallAt_ = 0;
    Handlers handlers_;
};

} // namespace f4t::apps

#endif // F4T_APPS_LINUX_SOCKET_API_HH
