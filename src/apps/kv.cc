#include "kv.hh"

#include <algorithm>

namespace f4t::apps
{

using tcp::CostCategory;

namespace
{

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
    out.push_back(static_cast<std::uint8_t>(v >> 16));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
           (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

} // namespace

void
kvEncode(const KvHeader &header, std::vector<std::uint8_t> &out)
{
    putU32(out, kvMagic);
    out.push_back(static_cast<std::uint8_t>(header.op));
    out.push_back(header.response ? 1 : 0);
    out.push_back(0);
    out.push_back(0);
    putU32(out, header.key);
    putU32(out, header.valueBytes);
}

bool
kvDecode(std::span<const std::uint8_t> bytes, KvHeader &out)
{
    if (bytes.size() < kvHeaderBytes || getU32(bytes.data()) != kvMagic)
        return false;
    std::uint8_t op = bytes[4];
    if (op > static_cast<std::uint8_t>(KvOp::set))
        return false;
    out.op = static_cast<KvOp>(op);
    out.response = (bytes[5] & 1) != 0;
    out.key = getU32(bytes.data() + 8);
    out.valueBytes = getU32(bytes.data() + 12);
    return true;
}

KvServerApp::KvServerApp(SocketApi &api, const KvServerConfig &config)
    : api_(api), config_(config), scratch_(16384)
{}

void
KvServerApp::start()
{
    SocketApi::Handlers handlers;
    handlers.onAccepted = [this](SocketApi::ConnId conn, std::uint16_t) {
        conns_[conn];
    };
    handlers.onReadable = [this](SocketApi::ConnId conn, std::size_t) {
        onData(conn);
    };
    handlers.onWritable = [this](SocketApi::ConnId conn) {
        auto it = conns_.find(conn);
        if (it != conns_.end())
            flush(conn, it->second);
    };
    handlers.onPeerClosed = [this](SocketApi::ConnId conn) {
        api_.close(conn);
    };
    handlers.onClosed = [this](SocketApi::ConnId conn) {
        conns_.erase(conn);
    };
    handlers.onReset = [this](SocketApi::ConnId conn) {
        conns_.erase(conn);
    };
    api_.setHandlers(handlers);
    api_.listen(config_.port);
}

void
KvServerApp::onData(SocketApi::ConnId conn)
{
    auto it = conns_.find(conn);
    if (it == conns_.end())
        return;
    process(conn, it->second);
}

void
KvServerApp::process(SocketApi::ConnId conn, Conn &state)
{
    for (;;) {
        if (!state.haveHeader) {
            std::size_t need = kvHeaderBytes - state.header.size();
            std::size_t n =
                api_.recv(conn, std::span(scratch_.data(), need));
            if (n == 0)
                return;
            state.header.insert(state.header.end(), scratch_.begin(),
                                scratch_.begin() + n);
            if (state.header.size() < kvHeaderBytes)
                continue;
            if (!kvDecode(state.header, state.request) ||
                state.request.response) {
                ++protocolErrors_;
                conns_.erase(conn);
                api_.close(conn);
                return;
            }
            state.header.clear();
            state.haveHeader = true;
            bool is_set = state.request.op == KvOp::set;
            api_.core().charge(CostCategory::application,
                               is_set ? config_.cyclesPerSet
                                      : config_.cyclesPerGet);
            state.valueRemaining = is_set ? state.request.valueBytes : 0;
            if (state.valueRemaining == 0) {
                respond(conn, state, state.request);
                state.haveHeader = false;
            }
        } else {
            std::size_t want = std::min<std::size_t>(state.valueRemaining,
                                                     scratch_.size());
            std::size_t n =
                api_.recv(conn, std::span(scratch_.data(), want));
            if (n == 0)
                return;
            if (config_.oracle != nullptr) {
                config_.oracle->onDeliver(
                    kvSetStream(state.request.key),
                    std::span(scratch_.data(), n));
            }
            valueBytesIn_ += n;
            setBytesByKey_[state.request.key] += n;
            state.valueRemaining -= static_cast<std::uint32_t>(n);
            if (state.valueRemaining == 0) {
                respond(conn, state, state.request);
                state.haveHeader = false;
            }
        }
    }
}

void
KvServerApp::respond(SocketApi::ConnId conn, Conn &state,
                     const KvHeader &request)
{
    KvHeader response = request;
    response.response = true;
    kvEncode(response, state.out);
    if (request.op == KvOp::get) {
        ++gets_;
        std::uint64_t &offset = state.getOffset[request.key];
        std::size_t start = state.out.size();
        state.out.resize(start + request.valueBytes);
        for (std::uint32_t i = 0; i < request.valueBytes; ++i)
            state.out[start + i] = kvValueByte(request.key, offset + i);
        if (config_.oracle != nullptr && request.valueBytes > 0) {
            config_.oracle->onSend(
                kvGetStream(request.key),
                std::span(state.out.data() + start, request.valueBytes));
        }
        offset += request.valueBytes;
        valueBytesOut_ += request.valueBytes;
    } else {
        ++sets_;
    }
    flush(conn, state);
}

void
KvServerApp::flush(SocketApi::ConnId conn, Conn &state)
{
    while (state.outSent < state.out.size()) {
        std::size_t n = api_.send(
            conn, std::span(state.out.data() + state.outSent,
                            state.out.size() - state.outSent));
        if (n == 0)
            break;
        state.outSent += n;
    }
    if (state.outSent == state.out.size()) {
        state.out.clear();
        state.outSent = 0;
    } else if (state.outSent > 65536) {
        // Keep the pending buffer from growing without bound under a
        // slow consumer: shed the already-sent prefix.
        state.out.erase(state.out.begin(),
                        state.out.begin() +
                            static_cast<std::ptrdiff_t>(state.outSent));
        state.outSent = 0;
    }
}

} // namespace f4t::apps
