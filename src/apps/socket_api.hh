/**
 * @file
 * SocketApi: the socket abstraction every application model is
 * written against.
 *
 * The paper's applications (iPerf, Nginx, wrk, the echo benchmark) run
 * unmodified on F4T because the library overrides the POSIX socket
 * API. The reproduction mirrors that property: each app is written
 * once against this interface and runs on both the F4T stack
 * (F4tSocketApi) and the Linux baseline (LinuxSocketApi).
 */

#ifndef F4T_APPS_SOCKET_API_HH
#define F4T_APPS_SOCKET_API_HH

#include <cstdint>
#include <functional>
#include <span>

#include "host/cpu.hh"
#include "net/headers.hh"
#include "sim/simulation.hh"

namespace f4t::apps
{

class SocketApi
{
  public:
    using ConnId = int;
    static constexpr ConnId invalidConn = -1;

    struct Handlers
    {
        std::function<void(ConnId)> onConnected;
        std::function<void(ConnId, std::uint16_t port)> onAccepted;
        std::function<void(ConnId)> onWritable;
        std::function<void(ConnId, std::size_t readable)> onReadable;
        std::function<void(ConnId)> onPeerClosed;
        std::function<void(ConnId)> onClosed;
        std::function<void(ConnId)> onReset;
    };

    virtual ~SocketApi() = default;

    virtual void setHandlers(const Handlers &handlers) = 0;

    virtual void listen(std::uint16_t port) = 0;
    virtual ConnId connect(net::Ipv4Address ip, std::uint16_t port) = 0;
    virtual std::size_t send(ConnId conn,
                             std::span<const std::uint8_t> data) = 0;
    virtual std::size_t recv(ConnId conn, std::span<std::uint8_t> out) = 0;
    virtual std::size_t readable(ConnId conn) = 0;
    virtual std::size_t writable(ConnId conn) = 0;
    virtual void close(ConnId conn) = 0;

    /** The CPU core this thread runs on (apps charge cycles here). */
    virtual host::CpuCore &core() = 0;
    virtual sim::Simulation &simulation() = 0;
};

} // namespace f4t::apps

#endif // F4T_APPS_SOCKET_API_HH
