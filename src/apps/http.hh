/**
 * @file
 * HTTP application models for the real-world benchmark (Section 5.2):
 *
 *  - HttpServerApp: an Nginx-like server answering GET requests with a
 *    fixed-size response (256 B including headers — the paper's size,
 *    chosen because Nginx's header alone exceeds 128 B). Each request
 *    charges the calibrated application and filesystem (vfs_read)
 *    budgets, plus — on Linux only — the kernel TCP budgets that
 *    Fig. 1a attributes to the stack.
 *  - HttpLoadGenApp: a wrk-like closed-loop generator with many
 *    concurrent connections, measuring request rate and latency
 *    percentiles (Figs. 10 and 12).
 */

#ifndef F4T_APPS_HTTP_HH
#define F4T_APPS_HTTP_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "apps/socket_api.hh"
#include "sim/stats.hh"

namespace f4t::apps
{

struct HttpServerConfig
{
    std::uint16_t port = 80;
    std::size_t responseBytes = 256;
    double appCyclesPerRequest = 2600.0;
    double filesystemCyclesPerRequest = 950.0;
    /** Linux-only per-request kernel budgets (zero on F4T). */
    double stackCyclesPerRequest = 0.0;
    double kernelCyclesPerRequest = 0.0;
};

class HttpServerApp
{
  public:
    HttpServerApp(SocketApi &api, const HttpServerConfig &config);

    void start();

    std::uint64_t requestsServed() const { return requestsServed_; }

  private:
    void onData(SocketApi::ConnId conn);
    void respond(SocketApi::ConnId conn);

    SocketApi &api_;
    HttpServerConfig config_;
    std::map<SocketApi::ConnId, std::string> partial_;
    std::vector<std::uint8_t> response_;
    std::uint64_t requestsServed_ = 0;
    std::vector<std::uint8_t> scratch_;
};

struct HttpLoadGenConfig
{
    net::Ipv4Address peer;
    std::uint16_t port = 80;
    std::size_t connections = 64;
    std::size_t responseBytes = 256;
    double appCyclesPerRequest = 600.0;
    sim::Tick connectSpacing = sim::microsecondsToTicks(1);
    std::string target = "/index.html";
};

class HttpLoadGenApp
{
  public:
    HttpLoadGenApp(SocketApi &api, sim::Histogram *latency_us,
                   const HttpLoadGenConfig &config);

    void start();

    std::uint64_t responses() const { return responses_; }
    std::size_t connectedFlows() const { return connected_; }

  private:
    void connectNext(std::size_t index);
    void issue(SocketApi::ConnId conn);
    void onData(SocketApi::ConnId conn);

    SocketApi &api_;
    sim::Histogram *latency_;
    HttpLoadGenConfig config_;
    std::string request_;
    std::map<SocketApi::ConnId, std::size_t> awaiting_;
    std::map<SocketApi::ConnId, sim::Tick> sendTime_;
    std::size_t connected_ = 0;
    std::uint64_t responses_ = 0;
    std::vector<std::uint8_t> scratch_;
};

} // namespace f4t::apps

#endif // F4T_APPS_HTTP_HH
