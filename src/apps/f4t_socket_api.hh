/**
 * @file
 * SocketApi adapter over the F4T library (one per application thread).
 */

#ifndef F4T_APPS_F4T_SOCKET_API_HH
#define F4T_APPS_F4T_SOCKET_API_HH

#include "apps/socket_api.hh"
#include "f4t/library.hh"

namespace f4t::apps
{

class F4tSocketApi : public SocketApi
{
  public:
    F4tSocketApi(sim::Simulation &sim, lib::F4tRuntime &runtime,
                 std::size_t queue, host::CpuCore &core)
        : sim_(sim), library_(runtime, queue, core)
    {}

    void
    setHandlers(const Handlers &handlers) override
    {
        lib::F4tCallbacks callbacks;
        callbacks.onConnected = handlers.onConnected;
        callbacks.onAccepted = handlers.onAccepted;
        callbacks.onWritable = handlers.onWritable;
        callbacks.onReadable = handlers.onReadable;
        callbacks.onPeerClosed = handlers.onPeerClosed;
        callbacks.onClosed = handlers.onClosed;
        callbacks.onReset = handlers.onReset;
        library_.setCallbacks(callbacks);
    }

    void listen(std::uint16_t port) override { library_.listen(port); }

    ConnId
    connect(net::Ipv4Address ip, std::uint16_t port) override
    {
        return library_.connect(ip, port);
    }

    std::size_t
    send(ConnId conn, std::span<const std::uint8_t> data) override
    {
        return library_.send(conn, data);
    }

    std::size_t
    recv(ConnId conn, std::span<std::uint8_t> out) override
    {
        return library_.recv(conn, out);
    }

    std::size_t readable(ConnId conn) override
    {
        return library_.readable(conn);
    }
    std::size_t writable(ConnId conn) override
    {
        return library_.writable(conn);
    }
    void close(ConnId conn) override { library_.close(conn); }

    host::CpuCore &core() override { return library_.core(); }
    sim::Simulation &simulation() override { return sim_; }

    lib::F4tLibrary &library() { return library_; }

  private:
    sim::Simulation &sim_;
    lib::F4tLibrary library_;
};

} // namespace f4t::apps

#endif // F4T_APPS_F4T_SOCKET_API_HH
