#include "http.hh"

#include <cstring>

namespace f4t::apps
{

using tcp::CostCategory;

HttpServerApp::HttpServerApp(SocketApi &api, const HttpServerConfig &config)
    : api_(api), config_(config), scratch_(4096)
{
    // Fixed-size response: status line + headers + HTML payload padded
    // to exactly responseBytes (as in the paper's 256 B responses).
    std::string head = "HTTP/1.1 200 OK\r\nServer: f4t-sim\r\n"
                       "Content-Type: text/html\r\nContent-Length: ";
    std::string body = "<html><body>f4t</body></html>";
    std::size_t overhead = head.size() + 8 /* length digits + CRLFCRLF */;
    std::size_t body_len = config_.responseBytes > overhead + body.size()
                               ? config_.responseBytes - overhead
                               : body.size();
    while (body.size() < body_len)
        body.push_back('.');
    char len_str[16];
    std::snprintf(len_str, sizeof(len_str), "%zu\r\n\r\n", body.size());
    std::string full = head + len_str + body;
    // Pad or trim to the exact configured size.
    while (full.size() < config_.responseBytes)
        full.push_back('.');
    full.resize(config_.responseBytes);
    response_.assign(full.begin(), full.end());
}

void
HttpServerApp::start()
{
    SocketApi::Handlers handlers;
    handlers.onAccepted = [this](SocketApi::ConnId conn, std::uint16_t) {
        partial_[conn].clear();
    };
    handlers.onReadable = [this](SocketApi::ConnId conn, std::size_t) {
        onData(conn);
    };
    handlers.onClosed = [this](SocketApi::ConnId conn) {
        partial_.erase(conn);
    };
    handlers.onPeerClosed = [this](SocketApi::ConnId conn) {
        api_.close(conn);
    };
    api_.setHandlers(handlers);
    api_.listen(config_.port);
}

void
HttpServerApp::onData(SocketApi::ConnId conn)
{
    std::string &buffer = partial_[conn];
    while (true) {
        std::size_t n = api_.recv(conn, scratch_);
        if (n == 0)
            break;
        buffer.append(reinterpret_cast<const char *>(scratch_.data()), n);
    }

    // Serve every complete request in the buffer.
    std::size_t pos;
    while ((pos = buffer.find("\r\n\r\n")) != std::string::npos) {
        buffer.erase(0, pos + 4);
        respond(conn);
    }
}

void
HttpServerApp::respond(SocketApi::ConnId conn)
{
    api_.core().charge(CostCategory::application,
                       config_.appCyclesPerRequest);
    api_.core().charge(CostCategory::filesystem,
                       config_.filesystemCyclesPerRequest);
    if (config_.stackCyclesPerRequest > 0) {
        api_.core().charge(CostCategory::tcpStack,
                           config_.stackCyclesPerRequest);
    }
    if (config_.kernelCyclesPerRequest > 0) {
        api_.core().charge(CostCategory::kernelOther,
                           config_.kernelCyclesPerRequest);
    }
    api_.send(conn, response_);
    ++requestsServed_;
}

HttpLoadGenApp::HttpLoadGenApp(SocketApi &api, sim::Histogram *latency_us,
                               const HttpLoadGenConfig &config)
    : api_(api), latency_(latency_us), config_(config), scratch_(4096)
{
    request_ = "GET " + config_.target +
               " HTTP/1.1\r\nHost: f4t-bench\r\nUser-Agent: wrk\r\n\r\n";
}

void
HttpLoadGenApp::start()
{
    SocketApi::Handlers handlers;
    handlers.onConnected = [this](SocketApi::ConnId conn) {
        ++connected_;
        issue(conn);
    };
    handlers.onReadable = [this](SocketApi::ConnId conn, std::size_t) {
        onData(conn);
    };
    api_.setHandlers(handlers);
    connectNext(0);
}

void
HttpLoadGenApp::connectNext(std::size_t index)
{
    if (index >= config_.connections)
        return;
    api_.connect(config_.peer, config_.port);
    api_.simulation().queue().scheduleCallback(
        api_.simulation().now() + config_.connectSpacing,
        "http.connectNext", [this, index] { connectNext(index + 1); });
}

void
HttpLoadGenApp::issue(SocketApi::ConnId conn)
{
    api_.core().charge(CostCategory::application,
                       config_.appCyclesPerRequest);
    awaiting_[conn] = config_.responseBytes;
    sendTime_[conn] = api_.simulation().now();
    api_.send(conn,
              std::span(reinterpret_cast<const std::uint8_t *>(
                            request_.data()),
                        request_.size()));
}

void
HttpLoadGenApp::onData(SocketApi::ConnId conn)
{
    auto it = awaiting_.find(conn);
    if (it == awaiting_.end())
        return;
    while (it->second > 0) {
        std::size_t want = std::min(it->second, scratch_.size());
        std::size_t n =
            api_.recv(conn, std::span(scratch_).subspan(0, want));
        if (n == 0)
            return;
        it->second -= n;
    }

    if (latency_) {
        latency_->sample(sim::ticksToSeconds(api_.simulation().now() -
                                             sendTime_[conn]) *
                         1e6);
    }
    ++responses_;
    issue(conn);
}

} // namespace f4t::apps
