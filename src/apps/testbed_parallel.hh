/**
 * @file
 * Partitioned two-node world for the parallel simulation kernel.
 *
 * ParallelEnginePairWorld is the multi-threaded counterpart of
 * testbed.hh's EnginePairWorld: the same two FtEngine hosts and the
 * same cable model, but each endpoint (engine + CPU complex + runtime)
 * lives in its own sim::Simulation partition, the cable is a
 * net::SplitLink whose propagation delay is the conservative
 * lookahead, and a sim::ParallelExecutor advances the two partitions
 * window-by-window — on one thread or several, with identical
 * simulated results either way.
 *
 * The serial EnginePairWorld remains the determinism oracle: the
 * parallel differential fuzzer runs the same scenario through both and
 * requires byte-exact StreamOracle ledgers.
 */

#ifndef F4T_APPS_TESTBED_PARALLEL_HH
#define F4T_APPS_TESTBED_PARALLEL_HH

#include <memory>
#include <optional>

#include "apps/f4t_socket_api.hh"
#include "apps/testbed.hh"
#include "core/engine.hh"
#include "f4t/runtime.hh"
#include "host/cpu.hh"
#include "net/split_link.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"

namespace f4t::testbed
{

/** SplitLink counterpart of makeLink() (same fault-model plumbing). */
inline std::unique_ptr<net::SplitLink>
makeSplitLink(sim::Simulation &sim_a, sim::Simulation &sim_b,
              double bandwidth_bps, const net::FaultModel &faults,
              const std::optional<net::FaultModel> &reverse_faults,
              sim::Tick propagation_delay = sim::nanosecondsToTicks(500))
{
    if (reverse_faults) {
        return std::make_unique<net::SplitLink>(
            sim_a, sim_b, "link", bandwidth_bps, propagation_delay,
            faults, *reverse_faults);
    }
    return std::make_unique<net::SplitLink>(
        sim_a, sim_b, "link", bandwidth_bps, propagation_delay, faults);
}

/** Two FtEngines cabled together, one partition per endpoint. */
struct ParallelEnginePairWorld
{
    explicit ParallelEnginePairWorld(
        std::size_t cores_per_host = 1, core::EngineConfig base = {},
        const net::FaultModel &faults = {}, double bandwidth_bps = 100e9,
        const std::optional<net::FaultModel> &reverse_faults = {},
        sim::Tick propagation_delay = sim::nanosecondsToTicks(500),
        std::size_t threads = 0)
        : executor(threads)
    {
        core::EngineConfig config_a = base;
        config_a.ip = ipA();
        config_a.mac = macA();
        core::EngineConfig config_b = base;
        config_b.ip = ipB();
        config_b.mac = macB();

        engineA = std::make_unique<core::FtEngine>(simA, "engineA",
                                                   config_a);
        engineB = std::make_unique<core::FtEngine>(simB, "engineB",
                                                   config_b);
        link = makeSplitLink(simA, simB, bandwidth_bps, faults,
                             reverse_faults, propagation_delay);
        link->connect(*engineA, *engineB);
        engineA->setTransmit(
            [this](net::Packet &&pkt) { link->aToB().send(std::move(pkt)); });
        engineB->setTransmit(
            [this](net::Packet &&pkt) { link->bToA().send(std::move(pkt)); });
        engineA->addArpEntry(ipB(), macB());
        engineB->addArpEntry(ipA(), macA());

        cpuA = std::make_unique<host::CpuComplex>(simA, "cpuA",
                                                  cores_per_host);
        cpuB = std::make_unique<host::CpuComplex>(simB, "cpuB",
                                                  cores_per_host);
        runtimeA = std::make_unique<lib::F4tRuntime>(simA, "runtimeA",
                                                     *engineA,
                                                     cores_per_host);
        runtimeB = std::make_unique<lib::F4tRuntime>(simB, "runtimeB",
                                                     *engineB,
                                                     cores_per_host);

        executor.addPartition(simA, "endpointA");
        executor.addPartition(simB, "endpointB");
        link->registerChannels(executor);
        // Partition 0's registry: the coordinator runs endpointA and
        // refreshes these scalars between windows on the same thread.
        executor.registerStats(simA.stats());
    }

    apps::F4tSocketApi
    apiA(std::size_t thread)
    {
        return apps::F4tSocketApi(simA, *runtimeA, thread,
                                  cpuA->core(thread));
    }

    apps::F4tSocketApi
    apiB(std::size_t thread)
    {
        return apps::F4tSocketApi(simB, *runtimeB, thread,
                                  cpuB->core(thread));
    }

    /** Advance both partitions to @p limit (see ParallelExecutor::run). */
    sim::Tick run(sim::Tick limit) { return executor.run(limit); }
    sim::Tick runFor(sim::Tick d) { return executor.runFor(d); }
    /** Last window barrier: both partitions have reached this tick. */
    sim::Tick now() const { return executor.now(); }

    sim::Simulation simA;
    sim::Simulation simB;
    sim::ParallelExecutor executor;
    std::unique_ptr<core::FtEngine> engineA;
    std::unique_ptr<core::FtEngine> engineB;
    std::unique_ptr<net::SplitLink> link;
    std::unique_ptr<host::CpuComplex> cpuA;
    std::unique_ptr<host::CpuComplex> cpuB;
    std::unique_ptr<lib::F4tRuntime> runtimeA;
    std::unique_ptr<lib::F4tRuntime> runtimeB;
};

} // namespace f4t::testbed

#endif // F4T_APPS_TESTBED_PARALLEL_HH
