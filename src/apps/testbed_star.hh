/**
 * @file
 * Star (fan-in) topology worlds: N client hosts and one server host,
 * every cable plugged into a net::Switch with a shared finite egress
 * pool. This is the multi-host testbed the open-loop scenarios run
 * on — incast means all N clients burst toward the one server port,
 * whose egress queue (and then TCP's loss recovery) absorbs the
 * oversubscription.
 *
 *  - StarWorld: everything in one Simulation (the serial oracle);
 *  - ParallelStarWorld: the clients + switch in one partition and the
 *    server in another, bridged by a SplitLink on the bottleneck
 *    cable. The switch and every client cable stay partition-local,
 *    so the only cross-partition traffic is the server cable's —
 *    exactly the seam the conservative lookahead covers.
 *
 * Both worlds build identical link/switch/engine parameters from the
 * same StarConfig, so the parallel differential can require byte-
 * exact application ledgers between them.
 */

#ifndef F4T_APPS_TESTBED_STAR_HH
#define F4T_APPS_TESTBED_STAR_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/f4t_socket_api.hh"
#include "core/engine.hh"
#include "f4t/runtime.hh"
#include "host/cpu.hh"
#include "net/link.hh"
#include "net/split_link.hh"
#include "net/switch.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"

namespace f4t::testbed
{

struct StarConfig
{
    std::size_t clients = 8;
    std::size_t coresPerHost = 1;
    core::EngineConfig engine;
    net::SwitchConfig fabric; ///< numPorts overwritten to clients+1+extraPorts
    double clientBandwidthBps = 100e9;
    double serverBandwidthBps = 100e9;
    sim::Tick propagationDelay = sim::nanosecondsToTicks(500);
    /** Faults on the switch->server (bottleneck) direction. */
    net::FaultModel serverLinkFaults;
    /** Faults on the server->switch direction; defaults to the
     *  decorrelated reverse of serverLinkFaults. */
    std::optional<net::FaultModel> serverLinkReverseFaults;
    /** Switch ports beyond clients+1, for raw traffic injectors
     *  (load::SynFloodApp). No cable or route attaches to them. */
    std::size_t extraPorts = 0;
};

inline net::Ipv4Address
starClientIp(std::size_t index)
{
    return net::Ipv4Address::fromOctets(
        10, 0, 1, static_cast<std::uint8_t>(index + 1));
}

inline net::MacAddress
starClientMac(std::size_t index)
{
    return net::MacAddress{
        {0x02, 0xf4, 0, 0, 1, static_cast<std::uint8_t>(index + 1)}};
}

inline net::Ipv4Address
starServerIp()
{
    return net::Ipv4Address::fromOctets(10, 0, 1, 200);
}

inline net::MacAddress
starServerMac()
{
    return net::MacAddress{{0x02, 0xf4, 0, 0, 1, 0xc8}};
}

namespace detail
{

/** Wiring shared by both star worlds: everything except the server
 *  cable, which is where they differ (Link vs SplitLink). */
template <typename World>
inline void
buildStarCommon(World &world, const StarConfig &config,
                sim::Simulation &client_sim, sim::Simulation &server_sim)
{
    net::SwitchConfig fabric_config = config.fabric;
    fabric_config.numPorts = config.clients + 1 + config.extraPorts;
    world.fabric = std::make_unique<net::Switch>(client_sim, "fabric",
                                                 fabric_config);

    for (std::size_t i = 0; i < config.clients; ++i) {
        std::string suffix = std::to_string(i);
        core::EngineConfig engine_config = config.engine;
        engine_config.ip = starClientIp(i);
        engine_config.mac = starClientMac(i);
        auto engine = std::make_unique<core::FtEngine>(
            client_sim, "client" + suffix, engine_config);
        engine->addArpEntry(starServerIp(), starServerMac());

        auto link = std::make_unique<net::Link>(
            client_sim, "uplink" + suffix, config.clientBandwidthBps,
            config.propagationDelay);
        // Endpoint A is the switch port, so aToB is the switch's
        // transmitter toward the client and bToA the client's uplink.
        link->connect(world.fabric->port(i), *engine);
        world.fabric->attachTx(i, link->aToB());
        net::Link *cable = link.get();
        engine->setTransmit([cable](net::Packet &&pkt) {
            cable->bToA().send(std::move(pkt));
        });
        world.fabric->addRoute(starClientIp(i), i);

        world.clientCpus.push_back(std::make_unique<host::CpuComplex>(
            client_sim, "clientCpu" + suffix, config.coresPerHost));
        world.clientRuntimes.push_back(std::make_unique<lib::F4tRuntime>(
            client_sim, "clientRuntime" + suffix, *engine,
            config.coresPerHost));
        world.clientEngines.push_back(std::move(engine));
        world.clientLinks.push_back(std::move(link));
    }

    core::EngineConfig server_config = config.engine;
    server_config.ip = starServerIp();
    server_config.mac = starServerMac();
    world.serverEngine = std::make_unique<core::FtEngine>(
        server_sim, "server", server_config);
    for (std::size_t i = 0; i < config.clients; ++i)
        world.serverEngine->addArpEntry(starClientIp(i), starClientMac(i));
    world.fabric->addRoute(starServerIp(), config.clients);

    world.serverCpu = std::make_unique<host::CpuComplex>(
        server_sim, "serverCpu", config.coresPerHost);
    world.serverRuntime = std::make_unique<lib::F4tRuntime>(
        server_sim, "serverRuntime", *world.serverEngine,
        config.coresPerHost);
}

} // namespace detail

/** Serial star world: one Simulation holds all hosts and the switch. */
struct StarWorld
{
    explicit StarWorld(const StarConfig &config = {})
    {
        detail::buildStarCommon(*this, config, sim, sim);

        if (config.serverLinkReverseFaults) {
            serverLink = std::make_unique<net::Link>(
                sim, "downlink", config.serverBandwidthBps,
                config.propagationDelay, config.serverLinkFaults,
                *config.serverLinkReverseFaults);
        } else {
            serverLink = std::make_unique<net::Link>(
                sim, "downlink", config.serverBandwidthBps,
                config.propagationDelay, config.serverLinkFaults);
        }
        serverLink->connect(fabric->port(clientEngines.size()),
                            *serverEngine);
        fabric->attachTx(clientEngines.size(), serverLink->aToB());
        serverEngine->setTransmit([this](net::Packet &&pkt) {
            serverLink->bToA().send(std::move(pkt));
        });
    }

    apps::F4tSocketApi
    clientApi(std::size_t client, std::size_t thread = 0)
    {
        return apps::F4tSocketApi(sim, *clientRuntimes[client], thread,
                                  clientCpus[client]->core(thread));
    }

    apps::F4tSocketApi
    serverApi(std::size_t thread = 0)
    {
        return apps::F4tSocketApi(sim, *serverRuntime, thread,
                                  serverCpu->core(thread));
    }

    /** Heap-allocated flavor for harnesses that hold many client
     *  apis in a container (F4tSocketApi cannot be moved). */
    std::unique_ptr<apps::F4tSocketApi>
    makeClientApi(std::size_t client, std::size_t thread = 0)
    {
        return std::make_unique<apps::F4tSocketApi>(
            sim, *clientRuntimes[client], thread,
            clientCpus[client]->core(thread));
    }

    sim::Simulation sim;
    std::unique_ptr<net::Switch> fabric;
    std::vector<std::unique_ptr<core::FtEngine>> clientEngines;
    std::vector<std::unique_ptr<net::Link>> clientLinks;
    std::vector<std::unique_ptr<host::CpuComplex>> clientCpus;
    std::vector<std::unique_ptr<lib::F4tRuntime>> clientRuntimes;
    std::unique_ptr<core::FtEngine> serverEngine;
    std::unique_ptr<net::Link> serverLink;
    std::unique_ptr<host::CpuComplex> serverCpu;
    std::unique_ptr<lib::F4tRuntime> serverRuntime;
};

/** Clients + switch in one partition, the server in another. */
struct ParallelStarWorld
{
    explicit ParallelStarWorld(const StarConfig &config = {},
                               std::size_t threads = 0)
        : executor(threads)
    {
        detail::buildStarCommon(*this, config, simClients, simServer);

        if (config.serverLinkReverseFaults) {
            serverLink = std::make_unique<net::SplitLink>(
                simClients, simServer, "downlink",
                config.serverBandwidthBps, config.propagationDelay,
                config.serverLinkFaults, *config.serverLinkReverseFaults);
        } else {
            serverLink = std::make_unique<net::SplitLink>(
                simClients, simServer, "downlink",
                config.serverBandwidthBps, config.propagationDelay,
                config.serverLinkFaults);
        }
        serverLink->connect(fabric->port(clientEngines.size()),
                            *serverEngine);
        fabric->attachTx(clientEngines.size(), serverLink->aToB());
        serverEngine->setTransmit([this](net::Packet &&pkt) {
            serverLink->bToA().send(std::move(pkt));
        });

        executor.addPartition(simClients, "clients");
        executor.addPartition(simServer, "server");
        serverLink->registerChannels(executor);
        // Partition 0's registry: the coordinator runs the clients
        // partition and refreshes these scalars between windows.
        executor.registerStats(simClients.stats());
    }

    apps::F4tSocketApi
    clientApi(std::size_t client, std::size_t thread = 0)
    {
        return apps::F4tSocketApi(simClients, *clientRuntimes[client],
                                  thread, clientCpus[client]->core(thread));
    }

    apps::F4tSocketApi
    serverApi(std::size_t thread = 0)
    {
        return apps::F4tSocketApi(simServer, *serverRuntime, thread,
                                  serverCpu->core(thread));
    }

    std::unique_ptr<apps::F4tSocketApi>
    makeClientApi(std::size_t client, std::size_t thread = 0)
    {
        return std::make_unique<apps::F4tSocketApi>(
            simClients, *clientRuntimes[client], thread,
            clientCpus[client]->core(thread));
    }

    sim::Tick run(sim::Tick limit) { return executor.run(limit); }
    sim::Tick runFor(sim::Tick duration) { return executor.runFor(duration); }
    sim::Tick now() const { return executor.now(); }

    sim::Simulation simClients;
    sim::Simulation simServer;
    sim::ParallelExecutor executor;
    std::unique_ptr<net::Switch> fabric;
    std::vector<std::unique_ptr<core::FtEngine>> clientEngines;
    std::vector<std::unique_ptr<net::Link>> clientLinks;
    std::vector<std::unique_ptr<host::CpuComplex>> clientCpus;
    std::vector<std::unique_ptr<lib::F4tRuntime>> clientRuntimes;
    std::unique_ptr<core::FtEngine> serverEngine;
    std::unique_ptr<net::SplitLink> serverLink;
    std::unique_ptr<host::CpuComplex> serverCpu;
    std::unique_ptr<lib::F4tRuntime> serverRuntime;
};

} // namespace f4t::testbed

#endif // F4T_APPS_TESTBED_STAR_HH
