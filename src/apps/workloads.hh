/**
 * @file
 * Workload applications from the paper's evaluation, written against
 * SocketApi so they run unmodified on F4T and on the Linux baseline:
 *
 *  - BulkSenderApp / BulkSinkApp: iPerf-style bulk transfer, one flow
 *    per thread, fixed request size (Fig. 8a, Fig. 9);
 *  - RoundRobinSenderApp: one thread spraying requests over 16 flows
 *    in round-robin order (Fig. 8b);
 *  - EchoServerApp / EchoClientApp: 128 B ping-pong over many flows,
 *    the low-locality connectivity stressor (Fig. 13).
 */

#ifndef F4T_APPS_WORKLOADS_HH
#define F4T_APPS_WORKLOADS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "apps/socket_api.hh"
#include "sim/stats.hh"

namespace f4t::apps
{

/** Pattern byte at a given stream offset (end-to-end integrity). */
inline std::uint8_t
patternByte(std::uint64_t offset)
{
    return static_cast<std::uint8_t>((offset * 131 + 17) & 0xff);
}

struct BulkSenderConfig
{
    net::Ipv4Address peer;
    std::uint16_t port = 5001;
    std::size_t requestBytes = 128;
    std::size_t burstRequests = 32;
    double appCyclesPerRequest = 20.0;
};

/** iPerf-like sender: one connection, back-to-back send() calls. */
class BulkSenderApp
{
  public:
    BulkSenderApp(SocketApi &api, const BulkSenderConfig &config);

    void start();

    std::uint64_t requestsSent() const { return requestsSent_; }
    std::uint64_t bytesSent() const { return bytesSent_; }
    bool connected() const { return connected_; }

  private:
    void pump();

    SocketApi &api_;
    BulkSenderConfig config_;
    SocketApi::ConnId conn_ = SocketApi::invalidConn;
    bool connected_ = false;
    bool blocked_ = false;
    bool pumpScheduled_ = false;
    std::uint64_t requestsSent_ = 0;
    std::uint64_t bytesSent_ = 0;
    std::vector<std::uint8_t> scratch_;
};

struct BulkSinkConfig
{
    std::uint16_t port = 5001;
    bool verifyPattern = false;
    double appCyclesPerRecv = 20.0;
};

/** iPerf-like receiver: accepts connections and drains them. */
class BulkSinkApp
{
  public:
    BulkSinkApp(SocketApi &api, const BulkSinkConfig &config);

    void start();

    std::uint64_t bytesReceived() const { return bytesReceived_; }
    std::uint64_t patternErrors() const { return patternErrors_; }

  private:
    void drain(SocketApi::ConnId conn);

    SocketApi &api_;
    BulkSinkConfig config_;
    std::map<SocketApi::ConnId, std::uint64_t> streamOffset_;
    std::uint64_t bytesReceived_ = 0;
    std::uint64_t patternErrors_ = 0;
    std::vector<std::uint8_t> scratch_;
};

struct RoundRobinSenderConfig
{
    net::Ipv4Address peer;
    std::uint16_t port = 5001;
    std::size_t flows = 16;
    std::size_t requestBytes = 128;
    std::size_t burstRequests = 32;
    double appCyclesPerRequest = 30.0;
};

/** Round-robin sender: requests rotate over a set of flows (8b). */
class RoundRobinSenderApp
{
  public:
    RoundRobinSenderApp(SocketApi &api,
                        const RoundRobinSenderConfig &config);

    void start();

    std::uint64_t requestsSent() const { return requestsSent_; }
    std::uint64_t bytesSent() const { return bytesSent_; }
    std::size_t connectedFlows() const { return connected_; }

  private:
    void pump();

    SocketApi &api_;
    RoundRobinSenderConfig config_;
    std::vector<SocketApi::ConnId> conns_;
    std::size_t connected_ = 0;
    std::size_t nextFlow_ = 0;
    bool pumpScheduled_ = false;
    std::uint64_t requestsSent_ = 0;
    std::uint64_t bytesSent_ = 0;
    std::vector<std::uint8_t> scratch_;
};

struct EchoServerConfig
{
    std::uint16_t port = 7;
    std::size_t messageBytes = 128;
    double appCyclesPerMessage = 50.0;
};

/** Echoes fixed-size messages back to the sender. */
class EchoServerApp
{
  public:
    EchoServerApp(SocketApi &api, const EchoServerConfig &config);

    void start();

    std::uint64_t messagesEchoed() const { return messagesEchoed_; }

  private:
    void serve(SocketApi::ConnId conn);

    SocketApi &api_;
    EchoServerConfig config_;
    std::uint64_t messagesEchoed_ = 0;
    std::vector<std::uint8_t> scratch_;
};

struct EchoClientConfig
{
    net::Ipv4Address peer;
    std::uint16_t port = 7;
    std::size_t flows = 64;
    std::size_t messageBytes = 128;
    double appCyclesPerMessage = 50.0;
    /** Stagger connection establishment (ticks between connects). */
    sim::Tick connectSpacing = sim::microsecondsToTicks(1);
};

/** Ping-pong client: each flow waits for the echo before the next
 *  message — the worst-case TCB locality pattern (Section 5.3). */
class EchoClientApp
{
  public:
    EchoClientApp(SocketApi &api, sim::Histogram *latency,
                  const EchoClientConfig &config);

    void start();

    std::uint64_t roundTrips() const { return roundTrips_; }
    std::size_t connectedFlows() const { return connected_; }

  private:
    void connectNext(std::size_t index);
    void fire(SocketApi::ConnId conn);
    void onEcho(SocketApi::ConnId conn);

    SocketApi &api_;
    sim::Histogram *latency_;
    EchoClientConfig config_;
    std::map<SocketApi::ConnId, sim::Tick> sendTime_;
    std::map<SocketApi::ConnId, std::size_t> pendingBytes_;
    std::size_t connected_ = 0;
    std::uint64_t roundTrips_ = 0;
    std::vector<std::uint8_t> scratch_;
};

} // namespace f4t::apps

#endif // F4T_APPS_WORKLOADS_HH
