/**
 * @file
 * Shared test fixtures: prebuilt two-node worlds.
 *
 *  - EnginePairWorld: two hosts, each with an FtEngine, directly
 *    cabled (the paper's FtEngine-to-FtEngine setup);
 *  - EngineLinuxWorld: an FtEngine host cabled to a Linux host (the
 *    NIC-to-FtEngine setup) — also the interop check that the engine
 *    speaks actual TCP;
 *  - LinuxPairWorld: two Linux hosts (the NIC-to-NIC baseline).
 */

#ifndef F4T_APPS_TESTBED_HH
#define F4T_APPS_TESTBED_HH

#include <memory>
#include <optional>

#include "apps/f4t_socket_api.hh"
#include "apps/linux_socket_api.hh"
#include "baseline/linux_host.hh"
#include "core/engine.hh"
#include "f4t/runtime.hh"
#include "host/cpu.hh"
#include "net/link.hh"
#include "sim/simulation.hh"

namespace f4t::testbed
{

/** Build a world's cable, honoring an optional asymmetric fault model
 *  (distinct per-direction rates; see the fuzz harness). */
inline std::unique_ptr<net::Link>
makeLink(sim::Simulation &sim, double bandwidth_bps,
         const net::FaultModel &faults,
         const std::optional<net::FaultModel> &reverse_faults,
         sim::Tick propagation_delay = sim::nanosecondsToTicks(500))
{
    if (reverse_faults) {
        return std::make_unique<net::Link>(
            sim, "link", bandwidth_bps, propagation_delay,
            faults, *reverse_faults);
    }
    return std::make_unique<net::Link>(
        sim, "link", bandwidth_bps, propagation_delay, faults);
}

inline net::Ipv4Address
ipA()
{
    return net::Ipv4Address::fromOctets(10, 0, 0, 1);
}

inline net::Ipv4Address
ipB()
{
    return net::Ipv4Address::fromOctets(10, 0, 0, 2);
}

inline net::MacAddress
macA()
{
    return net::MacAddress{{0x02, 0xf4, 0, 0, 0, 0x01}};
}

inline net::MacAddress
macB()
{
    return net::MacAddress{{0x02, 0xf4, 0, 0, 0, 0x02}};
}

/** Two FtEngines cabled together, one host (CPU+runtime) each. */
struct EnginePairWorld
{
    explicit EnginePairWorld(
        std::size_t cores_per_host = 1, core::EngineConfig base = {},
        const net::FaultModel &faults = {}, double bandwidth_bps = 100e9,
        const std::optional<net::FaultModel> &reverse_faults = {},
        sim::Tick propagation_delay = sim::nanosecondsToTicks(500))
    {
        core::EngineConfig config_a = base;
        config_a.ip = ipA();
        config_a.mac = macA();
        core::EngineConfig config_b = base;
        config_b.ip = ipB();
        config_b.mac = macB();

        engineA = std::make_unique<core::FtEngine>(sim, "engineA",
                                                   config_a);
        engineB = std::make_unique<core::FtEngine>(sim, "engineB",
                                                   config_b);
        link = makeLink(sim, bandwidth_bps, faults, reverse_faults,
                        propagation_delay);
        link->connect(*engineA, *engineB);
        engineA->setTransmit(
            [this](net::Packet &&pkt) { link->aToB().send(std::move(pkt)); });
        engineB->setTransmit(
            [this](net::Packet &&pkt) { link->bToA().send(std::move(pkt)); });
        engineA->addArpEntry(ipB(), macB());
        engineB->addArpEntry(ipA(), macA());

        cpuA = std::make_unique<host::CpuComplex>(sim, "cpuA",
                                                  cores_per_host);
        cpuB = std::make_unique<host::CpuComplex>(sim, "cpuB",
                                                  cores_per_host);
        runtimeA = std::make_unique<lib::F4tRuntime>(sim, "runtimeA",
                                                     *engineA,
                                                     cores_per_host);
        runtimeB = std::make_unique<lib::F4tRuntime>(sim, "runtimeB",
                                                     *engineB,
                                                     cores_per_host);
    }

    apps::F4tSocketApi
    apiA(std::size_t thread)
    {
        return apps::F4tSocketApi(sim, *runtimeA, thread,
                                  cpuA->core(thread));
    }

    apps::F4tSocketApi
    apiB(std::size_t thread)
    {
        return apps::F4tSocketApi(sim, *runtimeB, thread,
                                  cpuB->core(thread));
    }

    sim::Simulation sim;
    std::unique_ptr<core::FtEngine> engineA;
    std::unique_ptr<core::FtEngine> engineB;
    std::unique_ptr<net::Link> link;
    std::unique_ptr<host::CpuComplex> cpuA;
    std::unique_ptr<host::CpuComplex> cpuB;
    std::unique_ptr<lib::F4tRuntime> runtimeA;
    std::unique_ptr<lib::F4tRuntime> runtimeB;
};

/** An FtEngine host (A) cabled to a Linux host (B). */
struct EngineLinuxWorld
{
    explicit EngineLinuxWorld(
        std::size_t engine_cores = 1, std::size_t linux_cores = 1,
        core::EngineConfig base = {},
        baseline::LinuxHostConfig linux_base = {},
        const net::FaultModel &faults = {}, double bandwidth_bps = 100e9,
        const std::optional<net::FaultModel> &reverse_faults = {})
    {
        core::EngineConfig config_a = base;
        config_a.ip = ipA();
        config_a.mac = macA();
        engine = std::make_unique<core::FtEngine>(sim, "engine", config_a);

        linux_base.ip = ipB();
        linux_base.mac = macB();
        linux_base.cores = linux_cores;
        linux = std::make_unique<baseline::LinuxHost>(sim, "linux",
                                                      linux_base);

        link = makeLink(sim, bandwidth_bps, faults, reverse_faults);
        link->connect(*engine, *linux);
        engine->setTransmit(
            [this](net::Packet &&pkt) { link->aToB().send(std::move(pkt)); });
        linux->setTransmit(
            [this](net::Packet &&pkt) { link->bToA().send(std::move(pkt)); });
        engine->addArpEntry(ipB(), macB());
        linux->addArpEntry(ipA(), macA());

        cpu = std::make_unique<host::CpuComplex>(sim, "cpuA",
                                                 engine_cores);
        runtime = std::make_unique<lib::F4tRuntime>(sim, "runtime",
                                                    *engine, engine_cores);
    }

    apps::F4tSocketApi
    engineApi(std::size_t thread)
    {
        return apps::F4tSocketApi(sim, *runtime, thread,
                                  cpu->core(thread));
    }

    apps::LinuxSocketApi
    linuxApi(std::size_t core, double penalty = 0.0)
    {
        return apps::LinuxSocketApi(sim, *linux, core, penalty);
    }

    sim::Simulation sim;
    std::unique_ptr<core::FtEngine> engine;
    std::unique_ptr<baseline::LinuxHost> linux;
    std::unique_ptr<net::Link> link;
    std::unique_ptr<host::CpuComplex> cpu;
    std::unique_ptr<lib::F4tRuntime> runtime;
};

/** Two Linux hosts cabled together (the software baseline). */
struct LinuxPairWorld
{
    explicit LinuxPairWorld(
        std::size_t cores = 1, baseline::LinuxHostConfig base = {},
        const net::FaultModel &faults = {}, double bandwidth_bps = 100e9,
        const std::optional<net::FaultModel> &reverse_faults = {})
    {
        baseline::LinuxHostConfig config_a = base;
        config_a.ip = ipA();
        config_a.mac = macA();
        config_a.cores = cores;
        baseline::LinuxHostConfig config_b = base;
        config_b.ip = ipB();
        config_b.mac = macB();
        config_b.cores = cores;

        hostA = std::make_unique<baseline::LinuxHost>(sim, "hostA",
                                                      config_a);
        hostB = std::make_unique<baseline::LinuxHost>(sim, "hostB",
                                                      config_b);
        link = makeLink(sim, bandwidth_bps, faults, reverse_faults);
        link->connect(*hostA, *hostB);
        hostA->setTransmit(
            [this](net::Packet &&pkt) { link->aToB().send(std::move(pkt)); });
        hostB->setTransmit(
            [this](net::Packet &&pkt) { link->bToA().send(std::move(pkt)); });
        hostA->addArpEntry(ipB(), macB());
        hostB->addArpEntry(ipA(), macA());
    }

    apps::LinuxSocketApi
    apiA(std::size_t core, double penalty = 0.0)
    {
        return apps::LinuxSocketApi(sim, *hostA, core, penalty);
    }

    apps::LinuxSocketApi
    apiB(std::size_t core, double penalty = 0.0)
    {
        return apps::LinuxSocketApi(sim, *hostB, core, penalty);
    }

    sim::Simulation sim;
    std::unique_ptr<baseline::LinuxHost> hostA;
    std::unique_ptr<baseline::LinuxHost> hostB;
    std::unique_ptr<net::Link> link;
};

} // namespace f4t::testbed

#endif // F4T_APPS_TESTBED_HH
