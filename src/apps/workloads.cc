#include "workloads.hh"

namespace f4t::apps
{

using tcp::CostCategory;

// ---------------------------------------------------------------------
// BulkSenderApp
// ---------------------------------------------------------------------

BulkSenderApp::BulkSenderApp(SocketApi &api, const BulkSenderConfig &config)
    : api_(api), config_(config), scratch_(config.requestBytes)
{}

void
BulkSenderApp::start()
{
    SocketApi::Handlers handlers;
    handlers.onConnected = [this](SocketApi::ConnId) {
        connected_ = true;
        pump();
    };
    handlers.onWritable = [this](SocketApi::ConnId) {
        if (blocked_) {
            blocked_ = false;
            pump();
        }
    };
    api_.setHandlers(handlers);
    conn_ = api_.connect(config_.peer, config_.port);
}

void
BulkSenderApp::pump()
{
    if (!connected_ || pumpScheduled_)
        return;

    for (std::size_t i = 0; i < config_.burstRequests; ++i) {
        // Always attempt the send: a short or zero accept is what arms
        // the library's writable notification (pre-checking writable()
        // and parking would deadlock — nobody would wake us).
        for (std::size_t b = 0; b < scratch_.size(); ++b)
            scratch_[b] = patternByte(bytesSent_ + b);
        double cycles = config_.appCyclesPerRequest;
        api_.core().charge(CostCategory::application,
                           cycles > 1.0 ? cycles : 1.0);
        std::size_t sent = api_.send(conn_, scratch_);
        bytesSent_ += sent;
        if (sent < config_.requestBytes) {
            // Buffer full: the library will call onWritable once ACKs
            // free space; the stream resumes at the pattern offset.
            blocked_ = true;
            return;
        }
        requestsSent_ += 1;
    }

    // Yield the core: the next burst starts after everything this
    // burst charged has "executed".
    pumpScheduled_ = true;
    api_.core().runWhenFree([this] {
        pumpScheduled_ = false;
        pump();
    });
}

// ---------------------------------------------------------------------
// BulkSinkApp
// ---------------------------------------------------------------------

BulkSinkApp::BulkSinkApp(SocketApi &api, const BulkSinkConfig &config)
    : api_(api), config_(config), scratch_(16 * 1024)
{}

void
BulkSinkApp::start()
{
    SocketApi::Handlers handlers;
    handlers.onAccepted = [this](SocketApi::ConnId conn, std::uint16_t) {
        // Accept notifications can be delivered after the first data
        // readiness (the kernel wakeup jitter reorders them); never
        // reset an offset that draining has already advanced.
        streamOffset_.try_emplace(conn, 0);
    };
    handlers.onReadable = [this](SocketApi::ConnId conn, std::size_t) {
        drain(conn);
    };
    handlers.onClosed = [this](SocketApi::ConnId conn) {
        streamOffset_.erase(conn);
    };
    api_.setHandlers(handlers);
    api_.listen(config_.port);
}

void
BulkSinkApp::drain(SocketApi::ConnId conn)
{
    // Bounded work per activation; re-armed by the next onReadable.
    for (int round = 0; round < 8; ++round) {
        api_.core().charge(CostCategory::application,
                           config_.appCyclesPerRecv);
        std::size_t n = api_.recv(conn, scratch_);
        if (n == 0)
            return;
        if (config_.verifyPattern) {
            std::uint64_t &offset = streamOffset_[conn];
            for (std::size_t i = 0; i < n; ++i) {
                if (scratch_[i] != patternByte(offset + i))
                    ++patternErrors_;
            }
            offset += n;
        }
        bytesReceived_ += n;
    }
    if (api_.readable(conn) > 0) {
        api_.core().runWhenFree([this, conn] { drain(conn); });
    }
}

// ---------------------------------------------------------------------
// RoundRobinSenderApp
// ---------------------------------------------------------------------

RoundRobinSenderApp::RoundRobinSenderApp(
    SocketApi &api, const RoundRobinSenderConfig &config)
    : api_(api), config_(config), scratch_(config.requestBytes)
{}

void
RoundRobinSenderApp::start()
{
    SocketApi::Handlers handlers;
    handlers.onConnected = [this](SocketApi::ConnId) {
        ++connected_;
        if (connected_ == config_.flows)
            pump();
    };
    handlers.onWritable = [this](SocketApi::ConnId) { pump(); };
    api_.setHandlers(handlers);
    for (std::size_t i = 0; i < config_.flows; ++i)
        conns_.push_back(api_.connect(config_.peer, config_.port));
}

void
RoundRobinSenderApp::pump()
{
    if (connected_ < config_.flows || pumpScheduled_)
        return;

    std::size_t blocked_streak = 0;
    for (std::size_t i = 0;
         i < config_.burstRequests && blocked_streak < conns_.size();
         ++i) {
        SocketApi::ConnId conn = conns_[nextFlow_];
        nextFlow_ = (nextFlow_ + 1) % conns_.size();
        for (std::size_t b = 0; b < scratch_.size(); ++b)
            scratch_[b] = patternByte(b);
        double cycles = config_.appCyclesPerRequest;
        api_.core().charge(CostCategory::application,
                           cycles > 1.0 ? cycles : 1.0);
        // Attempt the send even when the buffer looks full so the
        // stack arms its writable notification.
        std::size_t sent = api_.send(conn, scratch_);
        bytesSent_ += sent;
        if (sent < config_.requestBytes) {
            ++blocked_streak;
            continue; // resume via onWritable
        }
        blocked_streak = 0;
        ++requestsSent_;
    }
    if (blocked_streak >= conns_.size())
        return; // every flow is window-limited; onWritable resumes

    pumpScheduled_ = true;
    api_.core().runWhenFree([this] {
        pumpScheduled_ = false;
        pump();
    });
}

// ---------------------------------------------------------------------
// EchoServerApp
// ---------------------------------------------------------------------

EchoServerApp::EchoServerApp(SocketApi &api, const EchoServerConfig &config)
    : api_(api), config_(config), scratch_(config.messageBytes)
{}

void
EchoServerApp::start()
{
    SocketApi::Handlers handlers;
    handlers.onReadable = [this](SocketApi::ConnId conn, std::size_t) {
        serve(conn);
    };
    api_.setHandlers(handlers);
    api_.listen(config_.port);
}

void
EchoServerApp::serve(SocketApi::ConnId conn)
{
    while (api_.readable(conn) >= config_.messageBytes) {
        api_.core().charge(CostCategory::application,
                           config_.appCyclesPerMessage);
        std::size_t n = api_.recv(
            conn, std::span(scratch_).subspan(0, config_.messageBytes));
        if (n == 0)
            return;
        api_.send(conn, std::span(scratch_).subspan(0, n));
        ++messagesEchoed_;
    }
}

// ---------------------------------------------------------------------
// EchoClientApp
// ---------------------------------------------------------------------

EchoClientApp::EchoClientApp(SocketApi &api, sim::Histogram *latency,
                             const EchoClientConfig &config)
    : api_(api), latency_(latency), config_(config),
      scratch_(config.messageBytes)
{}

void
EchoClientApp::start()
{
    SocketApi::Handlers handlers;
    handlers.onConnected = [this](SocketApi::ConnId conn) {
        ++connected_;
        fire(conn);
    };
    handlers.onReadable = [this](SocketApi::ConnId conn, std::size_t) {
        onEcho(conn);
    };
    api_.setHandlers(handlers);
    connectNext(0);
}

void
EchoClientApp::connectNext(std::size_t index)
{
    if (index >= config_.flows)
        return;
    api_.connect(config_.peer, config_.port);
    api_.simulation().queue().scheduleCallback(
        api_.simulation().now() + config_.connectSpacing,
        "echo.connectNext", [this, index] { connectNext(index + 1); });
}

void
EchoClientApp::fire(SocketApi::ConnId conn)
{
    api_.core().charge(CostCategory::application,
                       config_.appCyclesPerMessage);
    for (std::size_t b = 0; b < scratch_.size(); ++b)
        scratch_[b] = patternByte(b);
    sendTime_[conn] = api_.simulation().now();
    pendingBytes_[conn] = config_.messageBytes;
    api_.send(conn, scratch_);
}

void
EchoClientApp::onEcho(SocketApi::ConnId conn)
{
    auto pending = pendingBytes_.find(conn);
    if (pending == pendingBytes_.end())
        return;
    while (pending->second > 0) {
        std::size_t n = api_.recv(
            conn, std::span(scratch_).subspan(
                      0, std::min(pending->second, scratch_.size())));
        if (n == 0)
            return;
        pending->second -= n;
    }

    // Full echo received: complete the round trip and fire the next.
    if (latency_) {
        latency_->sample(sim::ticksToSeconds(api_.simulation().now() -
                                             sendTime_[conn]) *
                         1e6);
    }
    ++roundTrips_;
    fire(conn);
}

} // namespace f4t::apps
