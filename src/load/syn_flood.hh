/**
 * @file
 * SYN-flood injector: adversarial control-path overload.
 *
 * The open-loop and churn generators stress the data path and the
 * legitimate connection lifecycle; a SYN flood attacks the *passive
 * open* path instead. The app crafts raw pure-SYN frames from rotating
 * spoofed sources and injects them into a switch port at a fixed rate.
 * Every SYN with a fresh 4-tuple makes the victim allocate a flow,
 * install a TCB, and answer a SYN-ACK toward an address the fabric has
 * no route for — the handshake never completes, so the victim is left
 * holding half-open flows that retransmit SYN-ACKs into a route-miss
 * drop until its flow table exhausts and later SYNs are refused at the
 * RX parser. Legitimate traffic sharing the victim then sees the
 * contention: FPC cycles burned on flood events, scheduler churn from
 * half-open installs, and (once the table is full) connection refusal.
 *
 * Injection is deterministic: fixed inter-arrival gaps and counter-
 * derived source tuples, so scenario fingerprints stay exact.
 */

#ifndef F4T_LOAD_SYN_FLOOD_HH
#define F4T_LOAD_SYN_FLOOD_HH

#include <cstdint>
#include <string>

#include "net/link.hh"
#include "net/packet.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace f4t::load
{

struct SynFloodConfig
{
    /** Victim address; every SYN targets this IP and port. */
    net::Ipv4Address target;
    std::uint16_t targetPort = 11211;
    /** Victim MAC, used as the frame's L2 destination (the fabric
     *  routes on IP, but the victim's RX path checks addressing). */
    net::MacAddress targetMac;
    /** Injection rate; gaps are fixed at 1/rate for determinism. */
    double synsPerSec = 1e6;
    /** First SYN fires one gap after this tick. */
    sim::Tick startAt = 0;
    /** Stop after this many SYNs; 0 = flood until the run ends. */
    std::uint64_t maxSyns = 0;
};

/**
 * Injects the flood into @p ingress (a switch port on the victim's
 * fabric — give the attacker its own port so no legitimate cable
 * carries the forged frames).
 */
class SynFloodApp : public sim::SimObject
{
  public:
    SynFloodApp(sim::Simulation &sim, std::string name,
                net::PacketSink &ingress, const SynFloodConfig &config);

    void start();

    std::uint64_t sent() const { return sent_.value(); }

    /** Canonical flow hash of the most recent SYN — feed it to
     *  `f4t_blackbox --flow` to pull one flood flow's timeline out of
     *  a crash dump. */
    std::uint32_t lastFlowHash() const { return lastFlowHash_; }

  private:
    void inject();

    /** Spoofed source for the @p index-th SYN: 10.9.x.y addresses the
     *  star fabric never routes, so replies die as route misses. */
    net::Ipv4Address sourceIp(std::uint64_t index) const;

    net::PacketSink &ingress_;
    SynFloodConfig config_;
    sim::Tick gap_;
    std::uint32_t lastFlowHash_ = 0;
    sim::Counter sent_;
};

} // namespace f4t::load

#endif // F4T_LOAD_SYN_FLOOD_HH
