/**
 * @file
 * Flow-trace file format for replayable load scenarios.
 *
 * A generated scenario records one line per dispatched request; the
 * reader turns the file back into records the open-loop client can
 * replay against any world, reproducing the original run's request
 * stream exactly (the round-trip test asserts identical fingerprints
 * and per-flow byte counts). The format follows the flows/-style
 * line-per-request trace harnesses used by FPGA TCP-stack testbeds:
 * a commented header carrying scenario identity, then fixed
 * whitespace-separated columns:
 *
 *   # f4t-flows v1 scenario=<name> seed=<u64>
 *   # time_ps client conn op value_bytes
 *   12345 0 2 GET 2048
 *   12400 1 0 SET 512
 *
 * time_ps is the simulated dispatch tick (1 tick = 1 ps,
 * the simulator's native resolution, so replay is exact); client and conn identify
 * the issuing generator and its connection slot; op is GET or SET;
 * value_bytes is the value payload size (response payload for GET,
 * request payload for SET). Lines are emitted in dispatch order, so
 * time_ps is non-decreasing.
 */

#ifndef F4T_LOAD_TRACE_HH
#define F4T_LOAD_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "apps/kv.hh"

namespace f4t::load
{

struct TraceRecord
{
    std::uint64_t timePs = 0;
    std::uint32_t client = 0;
    std::uint32_t conn = 0;
    apps::KvOp op = apps::KvOp::get;
    std::uint32_t valueBytes = 0;

    bool operator==(const TraceRecord &) const = default;
};

/** Order-sensitive FNV-1a digest of a record sequence. */
std::uint64_t traceFingerprint(const std::vector<TraceRecord> &records);

class TraceWriter
{
  public:
    TraceWriter() = default;
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Open @p path and write the header. False on I/O failure. */
    bool open(const std::string &path, const std::string &scenario,
              std::uint64_t seed);

    void append(const TraceRecord &record);

    /** Flush and close; returns false if any write failed. */
    bool close();

    bool ok() const { return out_ != nullptr && !failed_; }
    std::uint64_t recordsWritten() const { return records_; }

  private:
    std::FILE *out_ = nullptr;
    bool failed_ = false;
    std::uint64_t records_ = 0;
};

struct TraceFile
{
    std::string scenario;
    std::uint64_t seed = 0;
    std::vector<TraceRecord> records;
};

/** Parse a trace file; nullopt (with *error set) on malformed input. */
std::optional<TraceFile> readTrace(const std::string &path,
                                   std::string *error = nullptr);

} // namespace f4t::load

#endif // F4T_LOAD_TRACE_HH
