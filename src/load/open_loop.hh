/**
 * @file
 * Open-loop KV load generation.
 *
 * The closed-loop generators (apps/workloads.hh, apps/http.hh) issue
 * a new request only when the previous response returns, so offered
 * load collapses exactly when the system congests — they can never
 * exhibit queue buildup, incast collapse, or tail-latency blowup.
 * OpenLoopClientApp decouples arrivals from completions: requests
 * arrive on a configured arrival process regardless of progress, wait
 * in a FIFO backlog for a free connection, and the measured latency
 * runs from the *arrival* tick to response completion — queue wait
 * included, which is where open-loop tails live.
 *
 * Modes:
 *  - generation: draw (arrival gap, op, value size) from the seeded
 *    substream generators; optionally record every dispatch as a
 *    TraceRecord (in memory and/or through a TraceWriter);
 *  - replay: re-issue a recorded trace — each record fires at its
 *    recorded dispatch tick on its recorded connection slot, which
 *    reproduces the original run's request stream exactly.
 *
 * ChurnClientApp stresses the control path instead: it opens
 * connections on an arrival process, runs a single GET over each, and
 * closes it — connection setup/teardown at a target conn/s, with the
 * full open-to-close lifecycle latency sampled per connection.
 */

#ifndef F4T_LOAD_OPEN_LOOP_HH
#define F4T_LOAD_OPEN_LOOP_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "apps/kv.hh"
#include "apps/socket_api.hh"
#include "load/generators.hh"
#include "load/trace.hh"
#include "net/stream_oracle.hh"
#include "sim/stats.hh"

namespace f4t::load
{

struct OpenLoopConfig
{
    net::Ipv4Address peer;
    std::uint16_t port = 11211;
    std::size_t connections = 4;
    /** KV key (and oracle stream) base: slot i uses streamBase + i.
     *  Give every client a disjoint range. */
    std::uint32_t streamBase = 0;
    std::uint32_t clientId = 0;
    std::uint64_t seed = 1;

    ArrivalSpec arrivals = ArrivalSpec::poisson(100'000.0);
    SizeSpec valueSizes = SizeSpec::fixedSize(1024);
    /** Fraction of requests that are GETs (rest are SETs). */
    double readFraction = 1.0;
    /** Stop generating after this many arrivals; 0 = unbounded. */
    std::uint64_t maxRequests = 0;
    /** First arrival lands at startAt + first gap. */
    sim::Tick startAt = 0;
    sim::Tick connectSpacing = sim::microsecondsToTicks(1);
    double appCyclesPerRequest = 250.0;

    /** Replay this trace (records for clientId only) instead of
     *  generating. Must outlive the app. */
    const std::vector<TraceRecord> *replay = nullptr;

    /** Optional sinks; all may be null. Must outlive the app. */
    TraceWriter *traceWriter = nullptr;
    net::StreamOracle *oracle = nullptr;
    sim::Histogram *latencyUs = nullptr;
};

class OpenLoopClientApp
{
  public:
    OpenLoopClientApp(apps::SocketApi &api, const OpenLoopConfig &config);

    void start();

    std::uint64_t issued() const { return issued_; }
    std::uint64_t dispatched() const { return dispatched_; }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t resets() const { return resets_; }
    /** GET response value bytes consumed. */
    std::uint64_t valueBytesReceived() const { return valueBytesReceived_; }
    /** SET request value bytes produced. */
    std::uint64_t valueBytesSent() const { return valueBytesSent_; }
    std::size_t backlogDepth() const { return backlog_.size(); }
    std::size_t peakBacklogDepth() const { return peakBacklog_; }
    /** Every dispatch, in dispatch order (generation and replay). */
    const std::vector<TraceRecord> &recorded() const { return recorded_; }
    /** GET response value bytes per connection slot. */
    std::uint64_t slotValueBytesReceived(std::size_t slot) const;

  private:
    struct Request
    {
        sim::Tick arrival = 0;
        apps::KvOp op = apps::KvOp::get;
        std::uint32_t valueBytes = 0;
    };

    struct Slot
    {
        apps::SocketApi::ConnId id = apps::SocketApi::invalidConn;
        bool connected = false;
        bool busy = false;
        bool dead = false;
        Request current;
        /** Response parse state. */
        std::size_t headerRemaining = 0;
        std::uint32_t valueRemaining = 0;
        /** Request bytes not yet accepted by send(). */
        std::vector<std::uint8_t> out;
        std::size_t outSent = 0;
        /** SET value stream offset (pattern + oracle continuity). */
        std::uint64_t setOffset = 0;
        std::uint64_t getOffset = 0;
        std::uint64_t valueBytesReceived = 0;
        /** Replay mode: requests bound to this slot, in trace order. */
        std::deque<Request> pending;
    };

    void connectSlot(std::size_t slot);
    void scheduleNextArrival();
    void onArrival(Request request);
    void scheduleNextReplay();
    void tryDispatch();
    void tryDispatchSlot(std::size_t slot);
    void dispatch(std::size_t slot, const Request &request);
    void flushSlot(std::size_t slot);
    void onReadable(std::size_t slot);
    void completeCurrent(std::size_t slot);
    std::uint32_t key(std::size_t slot) const;

    apps::SocketApi &api_;
    OpenLoopConfig config_;
    std::vector<Slot> slots_;
    std::map<apps::SocketApi::ConnId, std::size_t> slotById_;
    ArrivalProcess arrivals_;
    SizeSampler sizes_;
    sim::Random opRng_;
    std::deque<Request> backlog_;
    std::vector<TraceRecord> recorded_;
    std::vector<std::uint8_t> scratch_;
    sim::Tick lastArrival_ = 0;
    std::size_t replayNext_ = 0;
    std::uint64_t issued_ = 0;
    std::uint64_t dispatched_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t resets_ = 0;
    std::uint64_t valueBytesReceived_ = 0;
    std::uint64_t valueBytesSent_ = 0;
    std::size_t peakBacklog_ = 0;
};

struct ChurnConfig
{
    net::Ipv4Address peer;
    std::uint16_t port = 11211;
    std::uint32_t clientId = 0;
    std::uint64_t seed = 1;
    /** Connection-open arrival process (the target conn/s). */
    ArrivalSpec arrivals = ArrivalSpec::poisson(10'000.0);
    /** Value size of the single GET each connection performs. */
    std::uint32_t requestBytes = 512;
    /** Stop opening after this many connections; 0 = unbounded. */
    std::uint64_t maxOpens = 0;
    sim::Tick startAt = 0;
    double appCyclesPerRequest = 250.0;
    /** Open-to-closed lifecycle latency, microseconds; may be null. */
    sim::Histogram *lifecycleUs = nullptr;
};

class ChurnClientApp
{
  public:
    ChurnClientApp(apps::SocketApi &api, const ChurnConfig &config);

    void start();

    std::uint64_t opened() const { return opened_; }
    /** Lifecycles that drained the full response and initiated close.
     *  (The closed-notification tail includes TIME_WAIT — 10 ms of
     *  simulated idling on the active closer — so the lifecycle metric
     *  ends at close initiation; see closedEvents().) */
    std::uint64_t completed() const { return completed_; }
    /** Full teardowns observed (onClosed fired, flow recycled). */
    std::uint64_t closedEvents() const { return closed_; }
    std::uint64_t failed() const { return failed_; }
    std::uint64_t valueBytesReceived() const { return valueBytesReceived_; }

  private:
    struct Conn
    {
        sim::Tick openedAt = 0;
        std::size_t headerRemaining = apps::kvHeaderBytes;
        std::uint32_t valueRemaining = 0;
        bool requested = false;
        bool closing = false;
    };

    void scheduleNextOpen();
    void openOne();
    void onReadable(apps::SocketApi::ConnId conn);

    apps::SocketApi &api_;
    ChurnConfig config_;
    ArrivalProcess arrivals_;
    std::map<apps::SocketApi::ConnId, Conn> conns_;
    std::vector<std::uint8_t> scratch_;
    sim::Tick lastOpen_ = 0;
    std::uint64_t opened_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t closed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t valueBytesReceived_ = 0;
};

} // namespace f4t::load

#endif // F4T_LOAD_OPEN_LOOP_HH
