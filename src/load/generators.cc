#include "load/generators.hh"

#include <algorithm>
#include <cmath>

#include "sim/check.hh"

namespace f4t::load
{

double
ArrivalSpec::meanGapTicks() const
{
    switch (kind) {
    case Kind::fixed:
        return static_cast<double>(period);
    case Kind::poisson:
        f4t_assert(ratePerSec > 0, "poisson arrivals need a positive rate");
        return static_cast<double>(sim::ticksPerSecond) / ratePerSec;
    case Kind::logNormal:
        // mean = median * exp(sigma^2 / 2)
        return sim::microsecondsToTicks(medianGapUs) *
               std::exp(sigma * sigma / 2.0);
    }
    return 0.0;
}

sim::Tick
ArrivalProcess::nextGap()
{
    double gap = 0.0;
    switch (spec_.kind) {
    case ArrivalSpec::Kind::fixed:
        return spec_.period;
    case ArrivalSpec::Kind::poisson:
        gap = rng_.exponential(static_cast<double>(sim::ticksPerSecond) /
                               spec_.ratePerSec);
        break;
    case ArrivalSpec::Kind::logNormal:
        gap = rng_.logNormal(
                  std::log(static_cast<double>(
                      sim::microsecondsToTicks(spec_.medianGapUs))),
                  spec_.sigma);
        break;
    }
    return std::max<sim::Tick>(1, static_cast<sim::Tick>(gap));
}

double
SizeSpec::meanBytes() const
{
    switch (kind) {
    case Kind::fixed:
        return static_cast<double>(bytes);
    case Kind::boundedPareto: {
        // Bounded Pareto on [L, H] with shape a (a != 1):
        //   E[X] = L^a / (1 - (L/H)^a) * a / (a - 1)
        //          * (1 / L^(a-1) - 1 / H^(a-1))
        double l = minBytes;
        double h = maxBytes;
        double a = alpha;
        f4t_assert(l > 0 && h > l, "bounded Pareto needs 0 < min < max");
        if (std::fabs(a - 1.0) < 1e-9) {
            // a == 1 limit: E[X] = ln(H/L) / (1/L - 1/H)
            return std::log(h / l) / (1.0 / l - 1.0 / h);
        }
        double la = std::pow(l, a);
        double norm = 1.0 - std::pow(l / h, a);
        return la / norm * a / (a - 1.0) *
               (1.0 / std::pow(l, a - 1.0) - 1.0 / std::pow(h, a - 1.0));
    }
    case Kind::logNormal:
        return medianBytes * std::exp(sigma * sigma / 2.0);
    }
    return 0.0;
}

std::uint32_t
SizeSampler::next()
{
    switch (spec_.kind) {
    case SizeSpec::Kind::fixed:
        return spec_.bytes;
    case SizeSpec::Kind::boundedPareto: {
        // Inverse CDF of the bounded Pareto on [L, H]:
        //   x = (-(U * H^a - U * L^a - H^a) / (H^a L^a))^(-1/a)
        // computed in the numerically stable L-relative form.
        double u = rng_.uniform();
        double a = spec_.alpha;
        double l = spec_.minBytes;
        double h = spec_.maxBytes;
        double ratio = std::pow(l / h, a);
        double x = l * std::pow(1.0 - u * (1.0 - ratio), -1.0 / a);
        x = std::clamp(x, l, h);
        return static_cast<std::uint32_t>(x);
    }
    case SizeSpec::Kind::logNormal: {
        double x = rng_.logNormal(std::log(spec_.medianBytes), spec_.sigma);
        x = std::clamp(x, static_cast<double>(spec_.minBytes),
                       static_cast<double>(spec_.maxBytes));
        return static_cast<std::uint32_t>(x);
    }
    }
    return spec_.bytes;
}

} // namespace f4t::load
