/**
 * @file
 * Deterministic workload primitives for the open-loop load layer:
 * arrival processes (fixed-period, Poisson, log-normal inter-arrival)
 * and flow/value-size samplers (fixed, bounded Pareto, log-normal).
 *
 * Determinism contract: every stochastic sequence is drawn from its
 * own substream RNG, seeded by mixing the scenario seed with a stream
 * id (substreamSeed). A generator's sequence is therefore a pure
 * function of (seed, streamId, draw index) — independent of how many
 * other generators exist, the order their draws interleave in
 * simulated time, and how many worker threads advance the simulation.
 * The statistical unit tests pin both the analytic moments and exact
 * reproducibility; the parallel differential relies on the
 * interleaving independence.
 *
 * Specs are plain tagged values (copyable, comparable by field) so
 * scenario tables can be built statically; the Process/Sampler
 * classes materialize a spec plus a substream seed into a drawable
 * object.
 */

#ifndef F4T_LOAD_GENERATORS_HH
#define F4T_LOAD_GENERATORS_HH

#include <cstdint>

#include "sim/random.hh"
#include "sim/types.hh"

namespace f4t::load
{

/**
 * Mix a scenario seed with a stream id into an independent substream
 * seed (SplitMix64 finalizer — the same mixer sim::Random uses to
 * expand seeds, so nearby ids land in unrelated states).
 */
constexpr std::uint64_t
substreamSeed(std::uint64_t seed, std::uint64_t stream_id)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream_id + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** How long until the next request arrives. */
struct ArrivalSpec
{
    enum class Kind : std::uint8_t
    {
        fixed,     ///< constant period (synchronized incast rounds)
        poisson,   ///< exponential inter-arrival at a mean rate
        logNormal, ///< heavy-tailed bursty inter-arrival
    };

    Kind kind = Kind::fixed;
    sim::Tick period = sim::microsecondsToTicks(10); ///< fixed
    double ratePerSec = 0.0;                         ///< poisson
    double medianGapUs = 0.0;                        ///< logNormal
    double sigma = 0.0;                              ///< logNormal

    static ArrivalSpec
    fixedEvery(sim::Tick period)
    {
        ArrivalSpec s;
        s.kind = Kind::fixed;
        s.period = period;
        return s;
    }

    static ArrivalSpec
    poisson(double rate_per_sec)
    {
        ArrivalSpec s;
        s.kind = Kind::poisson;
        s.ratePerSec = rate_per_sec;
        return s;
    }

    /** Log-normal gaps with the given *median*; mean is
     *  median * exp(sigma^2 / 2). */
    static ArrivalSpec
    logNormalGap(double median_gap_us, double sigma)
    {
        ArrivalSpec s;
        s.kind = Kind::logNormal;
        s.medianGapUs = median_gap_us;
        s.sigma = sigma;
        return s;
    }

    /** Analytic mean inter-arrival gap in ticks. */
    double meanGapTicks() const;
};

class ArrivalProcess
{
  public:
    ArrivalProcess(const ArrivalSpec &spec, std::uint64_t substream_seed)
        : spec_(spec), rng_(substream_seed)
    {}

    /** Ticks from the previous arrival to the next one (>= 1 for the
     *  stochastic kinds, so arrivals always advance time). */
    sim::Tick nextGap();

    const ArrivalSpec &spec() const { return spec_; }

  private:
    ArrivalSpec spec_;
    sim::Random rng_;
};

/** How many value bytes a request carries. */
struct SizeSpec
{
    enum class Kind : std::uint8_t
    {
        fixed,
        boundedPareto, ///< heavy-tailed flow sizes, truncated
        logNormal,     ///< clamped log-normal
    };

    Kind kind = Kind::fixed;
    std::uint32_t bytes = 1024;      ///< fixed
    double alpha = 1.3;              ///< boundedPareto shape
    std::uint32_t minBytes = 64;     ///< lower truncation / clamp
    std::uint32_t maxBytes = 65536;  ///< upper truncation / clamp
    double medianBytes = 0.0;        ///< logNormal
    double sigma = 0.0;              ///< logNormal

    static SizeSpec
    fixedSize(std::uint32_t bytes)
    {
        SizeSpec s;
        s.kind = Kind::fixed;
        s.bytes = bytes;
        return s;
    }

    static SizeSpec
    boundedPareto(double alpha, std::uint32_t min_bytes,
                  std::uint32_t max_bytes)
    {
        SizeSpec s;
        s.kind = Kind::boundedPareto;
        s.alpha = alpha;
        s.minBytes = min_bytes;
        s.maxBytes = max_bytes;
        return s;
    }

    static SizeSpec
    logNormalSize(double median_bytes, double sigma,
                  std::uint32_t min_bytes, std::uint32_t max_bytes)
    {
        SizeSpec s;
        s.kind = Kind::logNormal;
        s.medianBytes = median_bytes;
        s.sigma = sigma;
        s.minBytes = min_bytes;
        s.maxBytes = max_bytes;
        return s;
    }

    /** Analytic mean of the (truncated) distribution, in bytes.
     *  For logNormal this is the *unclamped* mean — the statistical
     *  test picks parameters where clamping is negligible. */
    double meanBytes() const;
};

class SizeSampler
{
  public:
    SizeSampler(const SizeSpec &spec, std::uint64_t substream_seed)
        : spec_(spec), rng_(substream_seed)
    {}

    std::uint32_t next();

    const SizeSpec &spec() const { return spec_; }

  private:
    SizeSpec spec_;
    sim::Random rng_;
};

} // namespace f4t::load

#endif // F4T_LOAD_GENERATORS_HH
