#include "load/syn_flood.hh"

#include "net/headers.hh"

namespace f4t::load
{

namespace
{

/** Locally administered MAC the flood forges as its L2 source. */
constexpr net::MacAddress floodMac{{0x02, 0xf4, 0xba, 0xd0, 0x00, 0x01}};

} // namespace

SynFloodApp::SynFloodApp(sim::Simulation &sim, std::string name,
                         net::PacketSink &ingress,
                         const SynFloodConfig &config)
    : SimObject(sim, std::move(name)), ingress_(ingress), config_(config),
      sent_(sim.stats(), statName("sent"), "forged SYNs injected")
{
    f4t_assert(config_.synsPerSec > 0, "flood rate must be positive");
    gap_ = sim::secondsToTicks(1.0 / config_.synsPerSec);
    if (gap_ == 0)
        gap_ = 1;
}

void
SynFloodApp::start()
{
    queue().scheduleCallback(config_.startAt + gap_, "synflood.inject",
                             [this] { inject(); });
}

net::Ipv4Address
SynFloodApp::sourceIp(std::uint64_t index) const
{
    // 10.9.x.y, never .0 in the low octet; wraps after ~64k sources,
    // which combined with the rotating source port keeps every SYN's
    // 4-tuple unique far past any realistic flow-table size.
    return net::Ipv4Address::fromOctets(
        10, 9, static_cast<std::uint8_t>((index / 254) & 0xff),
        static_cast<std::uint8_t>(index % 254 + 1));
}

void
SynFloodApp::inject()
{
    std::uint64_t index = sent_.value();
    net::TcpHeader syn;
    syn.srcPort = static_cast<std::uint16_t>(1024 + index % 60000);
    syn.dstPort = config_.targetPort;
    syn.seq = static_cast<net::SeqNum>(index * 2654435761ULL);
    syn.flags = net::TcpFlags::syn;
    syn.window = 65535;
    net::Packet pkt = net::Packet::makeTcp(floodMac, config_.targetMac,
                                           sourceIp(index), config_.target,
                                           syn);
    lastFlowHash_ = pkt.flowHash32();
    ++sent_;
    ingress_.receivePacket(std::move(pkt));

    if (config_.maxSyns == 0 || sent_.value() < config_.maxSyns)
        queue().scheduleCallback(now() + gap_, "synflood.inject",
                                 [this] { inject(); });
}

} // namespace f4t::load
