#include "load/trace.hh"

#include <cinttypes>
#include <cstring>

namespace f4t::load
{

std::uint64_t
traceFingerprint(const std::vector<TraceRecord> &records)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
        for (int i = 0; i < 8; ++i) {
            h ^= (v >> (i * 8)) & 0xff;
            h *= 0x100000001b3ULL;
        }
    };
    mix(records.size());
    for (const TraceRecord &r : records) {
        mix(r.timePs);
        mix(r.client);
        mix(r.conn);
        mix(static_cast<std::uint64_t>(r.op));
        mix(r.valueBytes);
    }
    return h;
}

TraceWriter::~TraceWriter()
{
    close();
}

bool
TraceWriter::open(const std::string &path, const std::string &scenario,
                  std::uint64_t seed)
{
    close();
    out_ = std::fopen(path.c_str(), "w");
    failed_ = out_ == nullptr;
    records_ = 0;
    if (failed_)
        return false;
    std::fprintf(out_, "# f4t-flows v1 scenario=%s seed=%" PRIu64 "\n",
                 scenario.c_str(), seed);
    std::fprintf(out_, "# time_ps client conn op value_bytes\n");
    return true;
}

void
TraceWriter::append(const TraceRecord &record)
{
    if (out_ == nullptr)
        return;
    if (std::fprintf(out_, "%" PRIu64 " %" PRIu32 " %" PRIu32 " %s %" PRIu32
                           "\n",
                     record.timePs, record.client, record.conn,
                     record.op == apps::KvOp::get ? "GET" : "SET",
                     record.valueBytes) < 0) {
        failed_ = true;
    }
    ++records_;
}

bool
TraceWriter::close()
{
    if (out_ == nullptr)
        return !failed_;
    if (std::fclose(out_) != 0)
        failed_ = true;
    out_ = nullptr;
    return !failed_;
}

std::optional<TraceFile>
readTrace(const std::string &path, std::string *error)
{
    auto fail = [&](const std::string &message) -> std::optional<TraceFile> {
        if (error != nullptr)
            *error = path + ": " + message;
        return std::nullopt;
    };

    std::FILE *in = std::fopen(path.c_str(), "r");
    if (in == nullptr)
        return fail("cannot open");

    TraceFile out;
    char line[256];
    bool have_magic = false;
    std::uint64_t line_no = 0;
    while (std::fgets(line, sizeof(line), in) != nullptr) {
        ++line_no;
        if (line[0] == '#') {
            char scenario[128];
            std::uint64_t seed = 0;
            if (std::sscanf(line,
                            "# f4t-flows v1 scenario=%127s seed=%" SCNu64,
                            scenario, &seed) == 2) {
                out.scenario = scenario;
                out.seed = seed;
                have_magic = true;
            }
            continue;
        }
        if (line[0] == '\n' || line[0] == '\0')
            continue;
        TraceRecord r;
        char op[8];
        if (std::sscanf(line,
                        "%" SCNu64 " %" SCNu32 " %" SCNu32 " %7s %" SCNu32,
                        &r.timePs, &r.client, &r.conn, op,
                        &r.valueBytes) != 5) {
            std::fclose(in);
            return fail("malformed record at line " +
                        std::to_string(line_no));
        }
        if (std::strcmp(op, "GET") == 0) {
            r.op = apps::KvOp::get;
        } else if (std::strcmp(op, "SET") == 0) {
            r.op = apps::KvOp::set;
        } else {
            std::fclose(in);
            return fail("unknown op at line " + std::to_string(line_no));
        }
        if (!out.records.empty() && r.timePs < out.records.back().timePs) {
            std::fclose(in);
            return fail("time went backwards at line " +
                        std::to_string(line_no));
        }
        out.records.push_back(r);
    }
    std::fclose(in);
    if (!have_magic)
        return fail("missing '# f4t-flows v1' header");
    return out;
}

} // namespace f4t::load
