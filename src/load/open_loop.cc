#include "load/open_loop.hh"

#include <algorithm>

namespace f4t::load
{

using apps::KvHeader;
using apps::KvOp;
using apps::SocketApi;
using tcp::CostCategory;

OpenLoopClientApp::OpenLoopClientApp(SocketApi &api,
                                     const OpenLoopConfig &config)
    : api_(api),
      config_(config),
      slots_(config.connections),
      arrivals_(config.arrivals,
                substreamSeed(config.seed,
                              std::uint64_t{config.clientId} * 3)),
      sizes_(config.valueSizes,
             substreamSeed(config.seed,
                           std::uint64_t{config.clientId} * 3 + 1)),
      opRng_(substreamSeed(config.seed,
                           std::uint64_t{config.clientId} * 3 + 2)),
      scratch_(16384)
{}

std::uint32_t
OpenLoopClientApp::key(std::size_t slot) const
{
    return config_.streamBase + static_cast<std::uint32_t>(slot);
}

std::uint64_t
OpenLoopClientApp::slotValueBytesReceived(std::size_t slot) const
{
    return slot < slots_.size() ? slots_[slot].valueBytesReceived : 0;
}

void
OpenLoopClientApp::start()
{
    SocketApi::Handlers handlers;
    handlers.onConnected = [this](SocketApi::ConnId conn) {
        auto it = slotById_.find(conn);
        if (it == slotById_.end())
            return;
        slots_[it->second].connected = true;
        tryDispatchSlot(it->second);
    };
    handlers.onReadable = [this](SocketApi::ConnId conn, std::size_t) {
        auto it = slotById_.find(conn);
        if (it != slotById_.end())
            onReadable(it->second);
    };
    handlers.onWritable = [this](SocketApi::ConnId conn) {
        auto it = slotById_.find(conn);
        if (it != slotById_.end())
            flushSlot(it->second);
    };
    handlers.onPeerClosed = [this](SocketApi::ConnId conn) {
        api_.close(conn);
    };
    handlers.onClosed = [this](SocketApi::ConnId conn) {
        auto it = slotById_.find(conn);
        if (it != slotById_.end()) {
            slots_[it->second].dead = true;
            slots_[it->second].connected = false;
        }
    };
    handlers.onReset = [this](SocketApi::ConnId conn) {
        auto it = slotById_.find(conn);
        if (it == slotById_.end())
            return;
        Slot &slot = slots_[it->second];
        slot.dead = true;
        slot.connected = false;
        slot.busy = false;
        ++resets_;
    };
    api_.setHandlers(handlers);

    connectSlot(0);
    if (config_.replay != nullptr) {
        scheduleNextReplay();
    } else {
        lastArrival_ = std::max(config_.startAt, api_.simulation().now());
        scheduleNextArrival();
    }
}

void
OpenLoopClientApp::connectSlot(std::size_t slot)
{
    if (slot >= slots_.size())
        return;
    SocketApi::ConnId id = api_.connect(config_.peer, config_.port);
    slots_[slot].id = id;
    slotById_[id] = slot;
    api_.simulation().queue().scheduleCallback(
        api_.simulation().now() + config_.connectSpacing,
        "openloop.connect", [this, slot] { connectSlot(slot + 1); });
}

void
OpenLoopClientApp::scheduleNextArrival()
{
    if (config_.maxRequests != 0 && issued_ >= config_.maxRequests)
        return;
    sim::Tick at = lastArrival_ + arrivals_.nextGap();
    at = std::max(at, api_.simulation().now());
    lastArrival_ = at;
    api_.simulation().queue().scheduleCallback(
        at, "openloop.arrival", [this, at] {
            Request request;
            request.arrival = at;
            request.op = opRng_.chance(config_.readFraction) ? KvOp::get
                                                             : KvOp::set;
            request.valueBytes = sizes_.next();
            ++issued_;
            onArrival(request);
            scheduleNextArrival();
        });
}

void
OpenLoopClientApp::onArrival(Request request)
{
    backlog_.push_back(request);
    peakBacklog_ = std::max(peakBacklog_, backlog_.size());
    tryDispatch();
}

void
OpenLoopClientApp::scheduleNextReplay()
{
    const std::vector<TraceRecord> &records = *config_.replay;
    while (replayNext_ < records.size() &&
           records[replayNext_].client != config_.clientId) {
        ++replayNext_;
    }
    if (replayNext_ >= records.size())
        return;
    TraceRecord record = records[replayNext_++];
    sim::Tick at = std::max<sim::Tick>(record.timePs,
                                       api_.simulation().now());
    api_.simulation().queue().scheduleCallback(
        at, "openloop.replay", [this, record, at] {
            Request request;
            request.arrival = at;
            request.op = record.op;
            request.valueBytes = record.valueBytes;
            ++issued_;
            std::size_t slot =
                std::min<std::size_t>(record.conn, slots_.size() - 1);
            slots_[slot].pending.push_back(request);
            peakBacklog_ =
                std::max(peakBacklog_, slots_[slot].pending.size());
            tryDispatchSlot(slot);
            scheduleNextReplay();
        });
}

void
OpenLoopClientApp::tryDispatch()
{
    while (!backlog_.empty()) {
        std::size_t free_slot = slots_.size();
        for (std::size_t i = 0; i < slots_.size(); ++i) {
            const Slot &slot = slots_[i];
            if (slot.connected && !slot.busy && !slot.dead) {
                free_slot = i;
                break;
            }
        }
        if (free_slot == slots_.size())
            return;
        Request request = backlog_.front();
        backlog_.pop_front();
        dispatch(free_slot, request);
    }
}

void
OpenLoopClientApp::tryDispatchSlot(std::size_t index)
{
    Slot &slot = slots_[index];
    if (!slot.connected || slot.busy || slot.dead)
        return;
    if (!slot.pending.empty()) {
        Request request = slot.pending.front();
        slot.pending.pop_front();
        dispatch(index, request);
        return;
    }
    tryDispatch();
}

void
OpenLoopClientApp::dispatch(std::size_t index, const Request &request)
{
    Slot &slot = slots_[index];
    slot.busy = true;
    slot.current = request;
    ++dispatched_;

    TraceRecord record;
    record.timePs = api_.simulation().now();
    record.client = config_.clientId;
    record.conn = static_cast<std::uint32_t>(index);
    record.op = request.op;
    record.valueBytes = request.valueBytes;
    recorded_.push_back(record);
    if (config_.traceWriter != nullptr)
        config_.traceWriter->append(record);

    api_.core().charge(CostCategory::application,
                       config_.appCyclesPerRequest);

    KvHeader header;
    header.op = request.op;
    header.key = key(index);
    header.valueBytes = request.valueBytes;
    kvEncode(header, slot.out);
    if (request.op == KvOp::set && request.valueBytes > 0) {
        std::size_t start = slot.out.size();
        slot.out.resize(start + request.valueBytes);
        for (std::uint32_t i = 0; i < request.valueBytes; ++i) {
            slot.out[start + i] =
                apps::kvValueByte(header.key, slot.setOffset + i);
        }
        if (config_.oracle != nullptr) {
            config_.oracle->onSend(
                apps::kvSetStream(header.key),
                std::span(slot.out.data() + start, request.valueBytes));
        }
        slot.setOffset += request.valueBytes;
        valueBytesSent_ += request.valueBytes;
    }

    slot.headerRemaining = apps::kvHeaderBytes;
    slot.valueRemaining =
        request.op == KvOp::get ? request.valueBytes : 0;
    flushSlot(index);
}

void
OpenLoopClientApp::flushSlot(std::size_t index)
{
    Slot &slot = slots_[index];
    while (slot.outSent < slot.out.size()) {
        std::size_t n = api_.send(
            slot.id, std::span(slot.out.data() + slot.outSent,
                               slot.out.size() - slot.outSent));
        if (n == 0)
            break;
        slot.outSent += n;
    }
    if (slot.outSent == slot.out.size()) {
        slot.out.clear();
        slot.outSent = 0;
    } else if (slot.outSent > 65536) {
        slot.out.erase(slot.out.begin(),
                       slot.out.begin() +
                           static_cast<std::ptrdiff_t>(slot.outSent));
        slot.outSent = 0;
    }
}

void
OpenLoopClientApp::onReadable(std::size_t index)
{
    Slot &slot = slots_[index];
    for (;;) {
        if (!slot.busy)
            return;
        if (slot.headerRemaining > 0) {
            std::size_t n = api_.recv(
                slot.id, std::span(scratch_.data(), slot.headerRemaining));
            if (n == 0)
                return;
            slot.headerRemaining -= n;
        } else if (slot.valueRemaining > 0) {
            std::size_t want = std::min<std::size_t>(slot.valueRemaining,
                                                     scratch_.size());
            std::size_t n =
                api_.recv(slot.id, std::span(scratch_.data(), want));
            if (n == 0)
                return;
            if (config_.oracle != nullptr) {
                config_.oracle->onDeliver(apps::kvGetStream(key(index)),
                                          std::span(scratch_.data(), n));
            }
            slot.valueRemaining -= static_cast<std::uint32_t>(n);
            slot.valueBytesReceived += n;
            valueBytesReceived_ += n;
            slot.getOffset += n;
        } else {
            completeCurrent(index);
        }
    }
}

void
OpenLoopClientApp::completeCurrent(std::size_t index)
{
    Slot &slot = slots_[index];
    if (config_.latencyUs != nullptr) {
        sim::Tick now = api_.simulation().now();
        config_.latencyUs->sample(
            sim::ticksToSeconds(now - slot.current.arrival) * 1e6);
    }
    ++completed_;
    slot.busy = false;
    tryDispatchSlot(index);
}

ChurnClientApp::ChurnClientApp(SocketApi &api, const ChurnConfig &config)
    : api_(api),
      config_(config),
      arrivals_(config.arrivals,
                substreamSeed(config.seed,
                              0x100000ULL + config.clientId)),
      scratch_(4096)
{}

void
ChurnClientApp::start()
{
    SocketApi::Handlers handlers;
    handlers.onConnected = [this](SocketApi::ConnId conn) {
        auto it = conns_.find(conn);
        if (it == conns_.end() || it->second.requested)
            return;
        it->second.requested = true;
        api_.core().charge(CostCategory::application,
                           config_.appCyclesPerRequest);
        KvHeader header;
        header.op = KvOp::get;
        header.key = (config_.clientId << 20) |
                     (static_cast<std::uint32_t>(opened_) & 0xfffff);
        header.valueBytes = config_.requestBytes;
        std::vector<std::uint8_t> bytes;
        kvEncode(header, bytes);
        api_.send(conn, bytes);
    };
    handlers.onReadable = [this](SocketApi::ConnId conn, std::size_t) {
        onReadable(conn);
    };
    handlers.onPeerClosed = [this](SocketApi::ConnId conn) {
        api_.close(conn);
    };
    handlers.onClosed = [this](SocketApi::ConnId conn) {
        if (conns_.erase(conn) > 0)
            ++closed_;
    };
    handlers.onReset = [this](SocketApi::ConnId conn) {
        if (conns_.erase(conn) > 0)
            ++failed_;
    };
    api_.setHandlers(handlers);

    lastOpen_ = std::max(config_.startAt, api_.simulation().now());
    scheduleNextOpen();
}

void
ChurnClientApp::scheduleNextOpen()
{
    if (config_.maxOpens != 0 && opened_ >= config_.maxOpens)
        return;
    sim::Tick at = lastOpen_ + arrivals_.nextGap();
    at = std::max(at, api_.simulation().now());
    lastOpen_ = at;
    api_.simulation().queue().scheduleCallback(at, "churn.open", [this] {
        openOne();
        scheduleNextOpen();
    });
}

void
ChurnClientApp::openOne()
{
    SocketApi::ConnId id = api_.connect(config_.peer, config_.port);
    Conn conn;
    conn.openedAt = api_.simulation().now();
    conn.valueRemaining = config_.requestBytes;
    conns_[id] = conn;
    ++opened_;
}

void
ChurnClientApp::onReadable(SocketApi::ConnId id)
{
    auto it = conns_.find(id);
    if (it == conns_.end())
        return;
    Conn &conn = it->second;
    for (;;) {
        if (conn.headerRemaining > 0) {
            std::size_t n = api_.recv(
                id, std::span(scratch_.data(), conn.headerRemaining));
            if (n == 0)
                return;
            conn.headerRemaining -= n;
        } else if (conn.valueRemaining > 0) {
            std::size_t want = std::min<std::size_t>(conn.valueRemaining,
                                                     scratch_.size());
            std::size_t n =
                api_.recv(id, std::span(scratch_.data(), want));
            if (n == 0)
                return;
            conn.valueRemaining -= static_cast<std::uint32_t>(n);
            valueBytesReceived_ += n;
        } else {
            if (!conn.closing) {
                conn.closing = true;
                // Lifecycle ends here: the response is fully drained
                // and the close is on the wire. The closed
                // notification additionally waits out TIME_WAIT on
                // the active closer (tracked via closedEvents()).
                if (config_.lifecycleUs != nullptr) {
                    config_.lifecycleUs->sample(
                        sim::ticksToSeconds(api_.simulation().now() -
                                            conn.openedAt) *
                        1e6);
                }
                ++completed_;
                api_.close(id);
            }
            return;
        }
    }
}

} // namespace f4t::load
