/**
 * @file
 * Run metadata stamped into every BENCH_*.json: git revision, build
 * preset, the two compile-time feature gates, and a wall-clock
 * timestamp. f4t_report refuses to compare two files whose metadata
 * says the builds are not comparable (different preset or different
 * gate settings) — a trace-on build against a trace-off baseline is
 * an apples-to-oranges perf comparison, not a regression.
 */

#ifndef F4T_OBS_RUN_META_HH
#define F4T_OBS_RUN_META_HH

#include <cstdio>
#include <string>

namespace f4t::obs
{

struct JsonValue;

struct RunMeta
{
    std::string gitSha = "unknown";
    std::string preset = "unknown";
    bool traceEnabled = false;
    bool checksEnabled = false;
    /** F4T_ENABLE_PROFILE compiled in (the gate, not whether it ran). */
    bool profileEnabled = false;
    /** This run actually measured with --profile (scoped timers hot). */
    bool profiled = false;
    /** ISO-8601 UTC wall time of the run ("" when not recorded). */
    std::string timestamp;
    /**
     * Worker threads driving the simulation (1 = serial kernel).
     * Informational only: a run stays self-describing, but
     * comparableRuns() does not gate on it — thread count is part of
     * what a scaling comparison measures, and per-scenario results in
     * one file already mix thread counts.
     */
    unsigned threads = 1;

    bool known() const { return preset != "unknown"; }
};

/** Metadata of the currently running binary (gates are compile-time;
 *  the SHA and preset are baked in at configure time). */
RunMeta currentRunMeta();

/**
 * Emit the metadata as a `"meta": {...}` JSON object member (no
 * trailing comma) at indentation @p indent, for the hand-rolled
 * writers in bench/ and tools/.
 */
void writeMetaJson(std::FILE *out, const RunMeta &meta, int indent);

/** Parse a "meta" object; fields missing in old files stay defaulted. */
RunMeta parseRunMeta(const JsonValue &meta);

/**
 * Are two runs comparable for performance numbers? Presets and both
 * feature gates must match (the git SHA and timestamp may differ —
 * that is the comparison being made). @p why receives the first
 * mismatch when the answer is no.
 */
bool comparableRuns(const RunMeta &a, const RunMeta &b, std::string *why);

} // namespace f4t::obs

#endif // F4T_OBS_RUN_META_HH
