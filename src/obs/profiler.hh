/**
 * @file
 * Turns prof::Snapshot deltas from the wall-clock self-profiler into
 * the bench artefacts: a human-readable per-category cost table, a
 * `"profile": {...}` JSON member merged into the schema-5 BENCH_*.json
 * scenario objects (so f4t_report compares and gates the categories
 * like any other metric), and the parallel executor's per-worker
 * busy/idle/barrier breakdown with window occupancy.
 */

#ifndef F4T_OBS_PROFILER_HH
#define F4T_OBS_PROFILER_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/parallel.hh"
#include "sim/profile_scope.hh"

namespace f4t::obs
{

/** One per-category row of a profile report. */
struct ProfileRow
{
    std::string name;     ///< prof::toString category name
    double selfUs = 0.0;  ///< attributed self time
    std::uint64_t count = 0;
    double sharePct = 0.0; ///< of the report's attributed total
};

/** One executor thread's wall-clock breakdown (coordinator first). */
struct ProfileWorker
{
    double busyUs = 0.0;
    double idleUs = 0.0;
    double barrierUs = 0.0;
};

/**
 * A rendered profile over one measured interval: categories sorted by
 * self time (descending, zero rows dropped), total attributed time,
 * and coverage — attributed time as a percentage of wall time times
 * the thread count (the ISSUE's >= 90% acceptance bar for serial
 * runs). Worker rows and occupancy are present only when
 * attachWorkerProfiles() was called (parallel runs).
 */
struct ProfileReport
{
    double wallSeconds = 0.0;
    unsigned threads = 1;
    double totalUs = 0.0;
    double coveragePct = 0.0;
    std::uint64_t events = 0; ///< scope activations summed over rows
    std::vector<ProfileRow> rows;
    std::vector<ProfileWorker> workers;
    /** Mean busy share across executor threads (busy / wall). */
    double occupancyPct = 0.0;
};

/** Build a report from a snapshot delta over @p wall_seconds. */
ProfileReport makeProfileReport(const sim::prof::Snapshot &delta,
                                double wall_seconds, unsigned threads = 1);

/**
 * Attach per-worker rows from two executor profile snapshots taken
 * around the measured interval (element-wise delta) and derive window
 * occupancy from them against the report's wall time.
 */
void attachWorkerProfiles(ProfileReport &report,
                          const std::vector<sim::WorkerProfile> &before,
                          const std::vector<sim::WorkerProfile> &after);

/** Print the per-category table (and worker rows when present). */
void printProfileTable(std::FILE *out, const ProfileReport &report);

/**
 * Emit the report as a `"profile": {...}` JSON object member (no
 * trailing comma) at indentation @p indent, matching the hand-rolled
 * writers in bench/. Category members are named so f4t_report's
 * direction heuristic gates self_us lower-is-better and leaves the
 * share/coverage percentages ungated.
 */
void writeProfileJson(std::FILE *out, const ProfileReport &report,
                      int indent);

} // namespace f4t::obs

#endif // F4T_OBS_PROFILER_HH
