/**
 * @file
 * A minimal JSON reader for the observability tooling (f4t_report and
 * the bench metadata checks). Covers exactly what the BENCH_*.json and
 * per-stage latency files use: objects, arrays, strings, numbers,
 * booleans, null — no streaming, no comments, whole document in memory.
 *
 * Kept dependency-free on purpose: the container has no JSON library
 * baked in, and the reporter must stay a standalone binary.
 */

#ifndef F4T_OBS_JSON_HH
#define F4T_OBS_JSON_HH

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace f4t::obs
{

struct JsonValue
{
    enum class Kind
    {
        null,
        boolean,
        number,
        string,
        array,
        object
    };

    Kind kind = Kind::null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    /** Insertion-ordered; BENCH files never repeat keys. */
    std::vector<std::pair<std::string, JsonValue>> obj;

    bool isObject() const { return kind == Kind::object; }
    bool isArray() const { return kind == Kind::array; }
    bool isNumber() const { return kind == Kind::number; }
    bool isString() const { return kind == Kind::string; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    double numberOr(double fallback) const
    {
        return kind == Kind::number ? num : fallback;
    }
    std::string stringOr(std::string fallback) const
    {
        return kind == Kind::string ? str : std::move(fallback);
    }
    bool boolOr(bool fallback) const
    {
        return kind == Kind::boolean ? b : fallback;
    }
};

/**
 * Parse a complete JSON document. On failure returns std::nullopt and,
 * when @p error is non-null, a one-line description with the byte
 * offset of the problem.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

/** Read a whole file; std::nullopt (+error) when unreadable. */
std::optional<std::string> readFile(const std::string &path,
                                    std::string *error = nullptr);

} // namespace f4t::obs

#endif // F4T_OBS_JSON_HH
