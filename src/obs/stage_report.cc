#include "obs/stage_report.hh"

#include "obs/run_meta.hh"

namespace f4t::obs
{

using sim::ctrace::CausalTracer;
using sim::ctrace::Stage;
using sim::ctrace::numStages;

namespace
{

Stage
stageAt(std::size_t i)
{
    return static_cast<Stage>(i);
}

} // namespace

void
printStageTable(std::FILE *out, CausalTracer &tracer)
{
    std::fprintf(out,
                 "  %-10s %9s %9s %9s %9s %9s %9s %9s\n"
                 "  %-10s %9s %9s %9s %9s %9s %9s %9s\n",
                 "stage", "samples", "queue", "queue", "service", "service",
                 "total", "total", "", "", "p50 us", "p99 us", "p50 us",
                 "p99 us", "p50 us", "p99 us");
    for (std::size_t i = 0; i < numStages; ++i) {
        Stage s = stageAt(i);
        sim::Histogram &total = tracer.stageTotal(s);
        if (total.count() == 0)
            continue;
        sim::Histogram &queue = tracer.stageQueue(s);
        sim::Histogram &service = tracer.stageService(s);
        std::fprintf(out,
                     "  %-10s %9llu %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                     sim::ctrace::stageName(s),
                     static_cast<unsigned long long>(total.count()),
                     queue.percentile(50.0), queue.percentile(99.0),
                     service.percentile(50.0), service.percentile(99.0),
                     total.percentile(50.0), total.percentile(99.0));
    }
    sim::Histogram &e2e = tracer.e2e();
    std::fprintf(out,
                 "  %-10s %9llu %29s %19s %9.3f %9.3f\n", "e2e",
                 static_cast<unsigned long long>(e2e.count()), "", "",
                 e2e.percentile(50.0), e2e.percentile(99.0));
    std::fprintf(out,
                 "  requests: %llu started, %llu completed, %llu aborted"
                 " | anomalies: %llu out-of-order, %llu dup-arrivals,"
                 " %llu coalesced, %llu wire-reentries, %llu abandoned,"
                 " %llu overflow-dropped\n",
                 static_cast<unsigned long long>(tracer.requestsStarted()),
                 static_cast<unsigned long long>(tracer.requestsCompleted()),
                 static_cast<unsigned long long>(tracer.requestsAborted()),
                 static_cast<unsigned long long>(tracer.outOfOrderCloses()),
                 static_cast<unsigned long long>(tracer.duplicateArrivals()),
                 static_cast<unsigned long long>(tracer.coalescedMerges()),
                 static_cast<unsigned long long>(tracer.wireReentries()),
                 static_cast<unsigned long long>(tracer.abandonedSpans()),
                 static_cast<unsigned long long>(tracer.overflowDropped()));
}

void
printSlowestCriticalPath(std::FILE *out, CausalTracer &tracer)
{
    const sim::ctrace::Request *slowest = tracer.slowestCompleted();
    if (!slowest) {
        std::fprintf(out, "  (no completed traced requests)\n");
        return;
    }
    std::fprintf(out, "%s", tracer.criticalPath(*slowest).c_str());
}

namespace
{

void
writeDist(std::FILE *f, const char *key, sim::Histogram &h, bool last)
{
    std::fprintf(f,
                 "      \"%s\": {\"count\": %llu, \"mean_us\": %.6f, "
                 "\"p50_us\": %.6f, \"p99_us\": %.6f, \"max_us\": %.6f}%s\n",
                 key, static_cast<unsigned long long>(h.count()), h.mean(),
                 h.percentile(50.0), h.percentile(99.0), h.max(),
                 last ? "" : ",");
}

} // namespace

bool
writeStageJson(const std::string &path, CausalTracer &tracer,
               const RunMeta &meta)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "stage_report: cannot write '%s'\n",
                     path.c_str());
        return false;
    }
    std::fprintf(f, "{\n  \"kind\": \"stage_latency\",\n  \"schema\": 1,\n");
    writeMetaJson(f, meta, 2);
    std::fprintf(f, ",\n  \"stages\": [\n");
    bool first = true;
    for (std::size_t i = 0; i < numStages; ++i) {
        Stage s = stageAt(i);
        if (tracer.stageTotal(s).count() == 0)
            continue;
        std::fprintf(f, "%s    {\n      \"name\": \"%s\",\n",
                     first ? "" : ",\n", sim::ctrace::stageName(s));
        first = false;
        writeDist(f, "total", tracer.stageTotal(s), false);
        writeDist(f, "queue", tracer.stageQueue(s), false);
        writeDist(f, "service", tracer.stageService(s), true);
        std::fprintf(f, "    }");
    }
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f, "  \"e2e\": {\n");
    writeDist(f, "total", tracer.e2e(), true);
    std::fprintf(f, "  },\n");
    std::fprintf(
        f,
        "  \"counters\": {\n"
        "    \"requests_started\": %llu,\n"
        "    \"requests_completed\": %llu,\n"
        "    \"requests_aborted\": %llu,\n"
        "    \"out_of_order_closes\": %llu,\n"
        "    \"duplicate_arrivals\": %llu,\n"
        "    \"coalesced_merges\": %llu,\n"
        "    \"wire_reentries\": %llu,\n"
        "    \"abandoned_spans\": %llu,\n"
        "    \"overflow_dropped\": %llu\n"
        "  }\n}\n",
        static_cast<unsigned long long>(tracer.requestsStarted()),
        static_cast<unsigned long long>(tracer.requestsCompleted()),
        static_cast<unsigned long long>(tracer.requestsAborted()),
        static_cast<unsigned long long>(tracer.outOfOrderCloses()),
        static_cast<unsigned long long>(tracer.duplicateArrivals()),
        static_cast<unsigned long long>(tracer.coalescedMerges()),
        static_cast<unsigned long long>(tracer.wireReentries()),
        static_cast<unsigned long long>(tracer.abandonedSpans()),
        static_cast<unsigned long long>(tracer.overflowDropped()));
    std::fclose(f);
    return true;
}

} // namespace f4t::obs
