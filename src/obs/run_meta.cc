#include "obs/run_meta.hh"

#include "obs/json.hh"
#include "sim/check.hh"
#include "sim/profile_scope.hh"
#include "sim/trace.hh"

#include <ctime>

// F4T_GIT_SHA / F4T_PRESET_NAME are injected for this translation unit
// only (see src/obs/CMakeLists.txt) so a new commit rebuilds one file,
// not the whole library.
#ifndef F4T_GIT_SHA
#define F4T_GIT_SHA "unknown"
#endif
#ifndef F4T_PRESET_NAME
#define F4T_PRESET_NAME "unknown"
#endif

namespace f4t::obs
{

RunMeta
currentRunMeta()
{
    RunMeta meta;
    meta.gitSha = F4T_GIT_SHA;
    meta.preset = F4T_PRESET_NAME;
    meta.traceEnabled = sim::trace::compiledIn;
    meta.checksEnabled = sim::checksEnabled;
    meta.profileEnabled = sim::prof::compiledIn;
    meta.profiled = sim::prof::enabled();

    std::time_t now = std::time(nullptr);
    std::tm utc{};
    if (gmtime_r(&now, &utc)) {
        char buf[32];
        if (std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &utc))
            meta.timestamp = buf;
    }
    return meta;
}

void
writeMetaJson(std::FILE *out, const RunMeta &meta, int indent)
{
    std::fprintf(out,
                 "%*s\"meta\": {\n"
                 "%*s  \"git_sha\": \"%s\",\n"
                 "%*s  \"preset\": \"%s\",\n"
                 "%*s  \"trace_enabled\": %s,\n"
                 "%*s  \"checks_enabled\": %s,\n"
                 "%*s  \"profile_enabled\": %s,\n"
                 "%*s  \"profiled\": %s,\n"
                 "%*s  \"timestamp\": \"%s\",\n"
                 "%*s  \"threads\": %u\n"
                 "%*s}",
                 indent, "", indent, "", meta.gitSha.c_str(), indent, "",
                 meta.preset.c_str(), indent, "",
                 meta.traceEnabled ? "true" : "false", indent, "",
                 meta.checksEnabled ? "true" : "false", indent, "",
                 meta.profileEnabled ? "true" : "false", indent, "",
                 meta.profiled ? "true" : "false", indent, "",
                 meta.timestamp.c_str(), indent, "", meta.threads, indent,
                 "");
}

RunMeta
parseRunMeta(const JsonValue &meta)
{
    RunMeta out;
    if (!meta.isObject())
        return out;
    if (const JsonValue *v = meta.find("git_sha"))
        out.gitSha = v->stringOr(out.gitSha);
    if (const JsonValue *v = meta.find("preset"))
        out.preset = v->stringOr(out.preset);
    if (const JsonValue *v = meta.find("trace_enabled"))
        out.traceEnabled = v->boolOr(out.traceEnabled);
    if (const JsonValue *v = meta.find("checks_enabled"))
        out.checksEnabled = v->boolOr(out.checksEnabled);
    if (const JsonValue *v = meta.find("profile_enabled"))
        out.profileEnabled = v->boolOr(out.profileEnabled);
    if (const JsonValue *v = meta.find("profiled"))
        out.profiled = v->boolOr(out.profiled);
    if (const JsonValue *v = meta.find("timestamp"))
        out.timestamp = v->stringOr(out.timestamp);
    if (const JsonValue *v = meta.find("threads"))
        out.threads = static_cast<unsigned>(v->numberOr(out.threads));
    return out;
}

bool
comparableRuns(const RunMeta &a, const RunMeta &b, std::string *why)
{
    if (a.preset != b.preset) {
        if (why)
            *why = "build preset differs ('" + a.preset + "' vs '" +
                   b.preset + "')";
        return false;
    }
    if (a.traceEnabled != b.traceEnabled) {
        if (why)
            *why = "F4T_ENABLE_TRACE differs (tracing changes the hot "
                   "path cost)";
        return false;
    }
    if (a.checksEnabled != b.checksEnabled) {
        if (why)
            *why = "F4T_ENABLE_CHECKS differs (invariant checks change "
                   "the hot path cost)";
        return false;
    }
    if (a.profileEnabled != b.profileEnabled) {
        if (why)
            *why = "F4T_ENABLE_PROFILE differs (the profiler's runtime "
                   "gate costs a branch per event when compiled in)";
        return false;
    }
    if (a.profiled != b.profiled) {
        if (why)
            *why = "--profile differs (scoped timers add per-event clock "
                   "reads while enabled)";
        return false;
    }
    return true;
}

} // namespace f4t::obs
