/**
 * @file
 * Turns a CausalTracer's per-stage histograms into the paper-style
 * breakdown artefacts: a human-readable table (Fig. 11/12 companion),
 * a per-stage latency JSON file for f4t_report and the CI job, and a
 * critical-path dump of the slowest completed request.
 */

#ifndef F4T_OBS_STAGE_REPORT_HH
#define F4T_OBS_STAGE_REPORT_HH

#include <cstdio>
#include <string>

#include "sim/causal_trace.hh"

namespace f4t::obs
{

struct RunMeta;

/**
 * Print the per-stage latency table: one row per stage with sample
 * count, queueing / service / total p50 and p99 (µs), then the
 * end-to-end row and the tracer's health counters (out-of-order
 * closes, wire re-entries, coalesced merges, overflow drops).
 */
void printStageTable(std::FILE *out, sim::ctrace::CausalTracer &tracer);

/** Print the critical path of the slowest completed request. */
void printSlowestCriticalPath(std::FILE *out,
                              sim::ctrace::CausalTracer &tracer);

/**
 * Write the per-stage latency JSON (`schema: 1`, kind "stage_latency"):
 * run metadata, one object per stage with count/mean/p50/p99 for the
 * total/queue/service splits, the e2e distribution, and the health
 * counters. @return false (with a perror-style message on stderr) when
 * the file cannot be written.
 */
bool writeStageJson(const std::string &path,
                    sim::ctrace::CausalTracer &tracer,
                    const RunMeta &meta);

} // namespace f4t::obs

#endif // F4T_OBS_STAGE_REPORT_HH
