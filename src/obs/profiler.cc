#include "obs/profiler.hh"

#include <algorithm>

namespace f4t::obs
{

namespace
{

constexpr double nsPerUs = 1e3;

double
usOf(std::uint64_t ns)
{
    return static_cast<double>(ns) / nsPerUs;
}

} // namespace

ProfileReport
makeProfileReport(const sim::prof::Snapshot &delta, double wall_seconds,
                  unsigned threads)
{
    ProfileReport report;
    report.wallSeconds = wall_seconds;
    report.threads = threads == 0 ? 1 : threads;
    report.totalUs = usOf(delta.totalNs());
    report.events = delta.totalCount();

    for (std::size_t c = 0; c < sim::prof::categoryCount; ++c) {
        if (delta.ns[c] == 0 && delta.count[c] == 0)
            continue;
        ProfileRow row;
        row.name = sim::prof::toString(static_cast<sim::prof::Cat>(c));
        row.selfUs = usOf(delta.ns[c]);
        row.count = delta.count[c];
        report.rows.push_back(std::move(row));
    }
    std::sort(report.rows.begin(), report.rows.end(),
              [](const ProfileRow &a, const ProfileRow &b) {
                  return a.selfUs != b.selfUs ? a.selfUs > b.selfUs
                                              : a.name < b.name;
              });
    for (ProfileRow &row : report.rows)
        row.sharePct =
            report.totalUs > 0.0 ? 100.0 * row.selfUs / report.totalUs : 0.0;

    // Coverage: attributed self time against the wall-clock budget of
    // every thread that could have been accumulating (serial runs have
    // exactly one, so this is the ISSUE's >= 90% bar directly).
    double budget_us = wall_seconds * 1e6 * report.threads;
    report.coveragePct =
        budget_us > 0.0 ? 100.0 * report.totalUs / budget_us : 0.0;
    return report;
}

void
attachWorkerProfiles(ProfileReport &report,
                     const std::vector<sim::WorkerProfile> &before,
                     const std::vector<sim::WorkerProfile> &after)
{
    report.workers.clear();
    double busy_us = 0.0;
    for (std::size_t w = 0; w < after.size(); ++w) {
        sim::WorkerProfile base =
            w < before.size() ? before[w] : sim::WorkerProfile{};
        ProfileWorker worker;
        worker.busyUs = usOf(after[w].busyNs - base.busyNs);
        worker.idleUs = usOf(after[w].idleNs - base.idleNs);
        worker.barrierUs = usOf(after[w].barrierNs - base.barrierNs);
        busy_us += worker.busyUs;
        report.workers.push_back(worker);
    }
    double budget_us = report.wallSeconds * 1e6 *
                       static_cast<double>(report.workers.empty()
                                               ? 1
                                               : report.workers.size());
    report.occupancyPct =
        budget_us > 0.0 ? 100.0 * busy_us / budget_us : 0.0;
}

void
printProfileTable(std::FILE *out, const ProfileReport &report)
{
    std::fprintf(out,
                 "  profile: %.3f ms wall x %u thread%s, %.3f ms "
                 "attributed (%.1f%% coverage), %llu scopes\n",
                 report.wallSeconds * 1e3, report.threads,
                 report.threads == 1 ? "" : "s", report.totalUs / 1e3,
                 report.coveragePct,
                 static_cast<unsigned long long>(report.events));
    std::fprintf(out, "    %-18s %12s %7s %12s %10s\n", "category",
                 "self_us", "share", "count", "ns/scope");
    for (const ProfileRow &row : report.rows) {
        double per_scope =
            row.count > 0
                ? row.selfUs * nsPerUs / static_cast<double>(row.count)
                : 0.0;
        std::fprintf(out, "    %-18s %12.1f %6.1f%% %12llu %10.1f\n",
                     row.name.c_str(), row.selfUs, row.sharePct,
                     static_cast<unsigned long long>(row.count), per_scope);
    }
    if (!report.workers.empty()) {
        std::fprintf(out,
                     "    executor threads (occupancy %.1f%%):\n",
                     report.occupancyPct);
        for (std::size_t w = 0; w < report.workers.size(); ++w) {
            const ProfileWorker &worker = report.workers[w];
            std::fprintf(out,
                         "      %s%zu: busy %.1f us, %s %.1f us\n",
                         w == 0 ? "coordinator" : "worker", w,
                         worker.busyUs, w == 0 ? "barrier" : "idle",
                         w == 0 ? worker.barrierUs : worker.idleUs);
        }
    }
}

void
writeProfileJson(std::FILE *out, const ProfileReport &report, int indent)
{
    std::fprintf(out,
                 "%*s\"profile\": {\n"
                 "%*s  \"wall_seconds\": %.6f,\n"
                 "%*s  \"threads\": %u,\n"
                 "%*s  \"total_us\": %.1f,\n"
                 "%*s  \"coverage_pct\": %.1f,\n"
                 "%*s  \"categories\": {",
                 indent, "", indent, "", report.wallSeconds, indent, "",
                 report.threads, indent, "", report.totalUs, indent, "",
                 report.coveragePct, indent, "");
    for (std::size_t i = 0; i < report.rows.size(); ++i) {
        const ProfileRow &row = report.rows[i];
        std::fprintf(out,
                     "%s\n"
                     "%*s    \"%s\": { \"self_us\": %.1f, \"count\": %llu, "
                     "\"share_pct\": %.1f }",
                     i == 0 ? "" : ",", indent, "", row.name.c_str(),
                     row.selfUs, static_cast<unsigned long long>(row.count),
                     row.sharePct);
    }
    std::fprintf(out, "\n%*s  }", indent, "");
    if (!report.workers.empty()) {
        // Worker fields are *_micros, not *_us: they live inside an
        // array (which f4t_report's metric walk skips), and the names
        // stay off the direction heuristic on purpose — busy time is
        // neither better high nor low.
        std::fprintf(out,
                     ",\n"
                     "%*s  \"occupancy_pct\": %.1f,\n"
                     "%*s  \"workers\": [",
                     indent, "", report.occupancyPct, indent, "");
        for (std::size_t w = 0; w < report.workers.size(); ++w) {
            const ProfileWorker &worker = report.workers[w];
            std::fprintf(out,
                         "%s\n"
                         "%*s    { \"busy_micros\": %.1f, "
                         "\"idle_micros\": %.1f, "
                         "\"barrier_micros\": %.1f }",
                         w == 0 ? "" : ",", indent, "", worker.busyUs,
                         worker.idleUs, worker.barrierUs);
        }
        std::fprintf(out, "\n%*s  ]", indent, "");
    }
    std::fprintf(out, "\n%*s}", indent, "");
}

} // namespace f4t::obs
