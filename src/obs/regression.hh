/**
 * @file
 * Noise-aware perf-regression comparison between benchmark result
 * files. Understands two document shapes:
 *
 *  - BENCH_*.json written by the bench/ harnesses (kind inferred from
 *    the "bench" key): per-scenario throughput metrics, higher-better.
 *  - stage-latency JSON written by obs::writeStageJson ("kind":
 *    "stage_latency"): per-stage p50/p99 in µs, lower-better.
 *
 * Comparison is metric-by-metric within matching scenario names. Each
 * metric's direction is inferred from its name (rates are
 * higher-better, latencies lower-better; bookkeeping values such as
 * wall_seconds or raw event counts are not compared). A delta inside
 * the noise band is a pass either way — wall-clock benchmarks on a
 * shared machine are only meaningful beyond that band.
 */

#ifndef F4T_OBS_REGRESSION_HH
#define F4T_OBS_REGRESSION_HH

#include <cstdio>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/run_meta.hh"

namespace f4t::obs
{

/** One comparable number from a results file. */
struct Metric
{
    std::string name;
    double value = 0.0;
    bool higherBetter = true;
};

struct ScenarioResult
{
    std::string name;
    std::vector<Metric> metrics;
    /** Determinism fingerprint when the file carries one ("" if not). */
    std::string fingerprint;
};

/** A parsed results file, normalized for comparison. */
struct ReportDoc
{
    std::string path;
    /** "kernel", "stage_latency", ... — must match to compare. */
    std::string kind;
    RunMeta meta;
    std::vector<ScenarioResult> scenarios;
};

/**
 * Direction heuristic, exposed for tests. @return true when the
 * metric's direction is known; @p higher_better receives it.
 */
bool metricDirection(std::string_view name, bool *higher_better);

/** Parse + normalize one results file; nullopt (+error) on failure. */
std::optional<ReportDoc> loadReportDoc(const std::string &path,
                                       std::string *error);

enum class Verdict
{
    pass,      ///< delta within the noise band
    improved,  ///< moved the good way beyond the band
    regressed, ///< moved the bad way beyond the band
};

struct Comparison
{
    std::string scenario;
    std::string metric;
    double baseline = 0.0;
    double candidate = 0.0;
    /** Signed percent change, candidate relative to baseline. */
    double deltaPct = 0.0;
    Verdict verdict = Verdict::pass;
};

struct RegressionReport
{
    std::vector<Comparison> comparisons;
    /** Non-fatal observations: fingerprint changes, scenarios present
     *  on only one side, metrics with no counterpart. */
    std::vector<std::string> notes;
    bool anyRegression = false;
};

/**
 * Compare @p candidate against @p baseline with the given fractional
 * noise band (0.10 == 10%). Precondition: same kind and comparable
 * run metadata — callers check with comparableRuns() first.
 */
RegressionReport compareDocs(const ReportDoc &baseline,
                             const ReportDoc &candidate, double noise_band);

/** Print the human-readable verdict table for one comparison. */
void printReport(std::FILE *out, const ReportDoc &baseline,
                 const ReportDoc &candidate, const RegressionReport &report,
                 double noise_band);

} // namespace f4t::obs

#endif // F4T_OBS_REGRESSION_HH
