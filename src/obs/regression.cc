#include "obs/regression.hh"

#include "obs/json.hh"

#include <cmath>

namespace f4t::obs
{

bool
metricDirection(std::string_view name, bool *higher_better)
{
    // Bookkeeping values that *look* directional but duplicate another
    // metric (wall_seconds is 1/events_per_sec) or are too noisy to
    // gate on (a distribution's max is a single worst sample).
    if (name.find("wall_seconds") != std::string_view::npos ||
        name.find("max_us") != std::string_view::npos)
        return false;

    static constexpr std::string_view higher[] = {
        "per_sec", "per_wall", "rate", "gbps", "mbps", "mrps",
        "throughput", "ops",
    };
    static constexpr std::string_view lower[] = {
        "_us", "us_", "_ns", "latency", "seconds", "_time", "wall",
    };
    for (std::string_view h : higher) {
        if (name.find(h) != std::string_view::npos) {
            *higher_better = true;
            return true;
        }
    }
    for (std::string_view l : lower) {
        if (name.find(l) != std::string_view::npos) {
            *higher_better = false;
            return true;
        }
    }
    return false;
}

namespace
{

void
collectMetrics(const JsonValue &object, const std::string &prefix,
               std::vector<Metric> &out)
{
    for (const auto &[key, value] : object.obj) {
        std::string full = prefix.empty() ? key : prefix + "." + key;
        if (value.isNumber()) {
            bool higher = true;
            if (metricDirection(full, &higher))
                out.push_back({full, value.num, higher});
        } else if (value.isObject()) {
            collectMetrics(value, full, out);
        }
    }
}

ScenarioResult
normalizeScenario(const JsonValue &scenario, std::string fallback_name)
{
    ScenarioResult result;
    result.name = std::move(fallback_name);
    if (const JsonValue *n = scenario.find("name"))
        result.name = n->stringOr(result.name);
    if (const JsonValue *fp = scenario.find("fingerprint"))
        result.fingerprint = fp->stringOr("");
    collectMetrics(scenario, "", result.metrics);
    return result;
}

} // namespace

std::optional<ReportDoc>
loadReportDoc(const std::string &path, std::string *error)
{
    std::optional<std::string> text = readFile(path, error);
    if (!text)
        return std::nullopt;
    std::optional<JsonValue> doc = parseJson(*text, error);
    if (!doc) {
        if (error)
            *error = path + ": " + *error;
        return std::nullopt;
    }
    if (!doc->isObject()) {
        if (error)
            *error = path + ": top-level value is not an object";
        return std::nullopt;
    }

    ReportDoc out;
    out.path = path;
    if (const JsonValue *meta = doc->find("meta"))
        out.meta = parseRunMeta(*meta);

    if (const JsonValue *kind = doc->find("kind"))
        out.kind = kind->stringOr("");
    else if (const JsonValue *bench = doc->find("bench"))
        out.kind = bench->stringOr("");
    if (out.kind.empty()) {
        if (error)
            *error = path + ": neither \"bench\" nor \"kind\" present — "
                            "not a benchmark results file";
        return std::nullopt;
    }

    if (out.kind == "stage_latency") {
        if (const JsonValue *stages = doc->find("stages");
            stages && stages->isArray()) {
            for (const JsonValue &stage : stages->arr) {
                ScenarioResult s = normalizeScenario(stage, "stage");
                s.name = "stage:" + s.name;
                out.scenarios.push_back(std::move(s));
            }
        }
        if (const JsonValue *e2e = doc->find("e2e"); e2e && e2e->isObject())
            out.scenarios.push_back(normalizeScenario(*e2e, "e2e"));
        return out;
    }

    const JsonValue *scenarios = doc->find("scenarios");
    if (!scenarios || !scenarios->isArray()) {
        if (error)
            *error = path + ": no \"scenarios\" array";
        return std::nullopt;
    }
    for (std::size_t i = 0; i < scenarios->arr.size(); ++i) {
        out.scenarios.push_back(normalizeScenario(
            scenarios->arr[i], "scenario" + std::to_string(i)));
    }
    return out;
}

RegressionReport
compareDocs(const ReportDoc &baseline, const ReportDoc &candidate,
            double noise_band)
{
    RegressionReport report;

    for (const ScenarioResult &base : baseline.scenarios) {
        const ScenarioResult *cand = nullptr;
        for (const ScenarioResult &c : candidate.scenarios) {
            if (c.name == base.name) {
                cand = &c;
                break;
            }
        }
        if (!cand) {
            report.notes.push_back("scenario '" + base.name +
                                   "' missing from " + candidate.path);
            continue;
        }
        if (!base.fingerprint.empty() && !cand->fingerprint.empty() &&
            base.fingerprint != cand->fingerprint) {
            report.notes.push_back(
                "scenario '" + base.name + "' fingerprint changed (" +
                base.fingerprint + " -> " + cand->fingerprint +
                "): simulated behaviour differs, wall-clock deltas may "
                "reflect workload change");
        }

        for (const Metric &m : base.metrics) {
            const Metric *cm = nullptr;
            for (const Metric &c : cand->metrics) {
                if (c.name == m.name) {
                    cm = &c;
                    break;
                }
            }
            if (!cm) {
                report.notes.push_back("metric '" + base.name + "/" +
                                       m.name + "' missing from " +
                                       candidate.path);
                continue;
            }
            if (m.value == 0.0) {
                if (cm->value != 0.0) {
                    report.notes.push_back(
                        "metric '" + base.name + "/" + m.name +
                        "' baseline is zero; cannot compute a delta");
                }
                continue;
            }
            Comparison cmp;
            cmp.scenario = base.name;
            cmp.metric = m.name;
            cmp.baseline = m.value;
            cmp.candidate = cm->value;
            double delta = (cm->value - m.value) / std::fabs(m.value);
            cmp.deltaPct = delta * 100.0;
            bool worse = m.higherBetter ? delta < -noise_band
                                        : delta > noise_band;
            bool better = m.higherBetter ? delta > noise_band
                                         : delta < -noise_band;
            cmp.verdict = worse ? Verdict::regressed
                                : better ? Verdict::improved
                                         : Verdict::pass;
            if (worse)
                report.anyRegression = true;
            report.comparisons.push_back(std::move(cmp));
        }
    }

    for (const ScenarioResult &c : candidate.scenarios) {
        bool found = false;
        for (const ScenarioResult &base : baseline.scenarios) {
            if (base.name == c.name) {
                found = true;
                break;
            }
        }
        if (!found) {
            report.notes.push_back("scenario '" + c.name +
                                   "' is new in " + candidate.path);
        }
    }
    return report;
}

void
printReport(std::FILE *out, const ReportDoc &baseline,
            const ReportDoc &candidate, const RegressionReport &report,
            double noise_band)
{
    std::fprintf(out, "== %s: %s -> %s (noise band +/-%.0f%%) ==\n",
                 baseline.kind.c_str(), baseline.path.c_str(),
                 candidate.path.c_str(), noise_band * 100.0);
    std::fprintf(out, "  baseline:  %s @ %s (%s)\n",
                 baseline.meta.preset.c_str(),
                 baseline.meta.gitSha.c_str(),
                 baseline.meta.timestamp.empty()
                     ? "no timestamp"
                     : baseline.meta.timestamp.c_str());
    std::fprintf(out, "  candidate: %s @ %s (%s)\n",
                 candidate.meta.preset.c_str(),
                 candidate.meta.gitSha.c_str(),
                 candidate.meta.timestamp.empty()
                     ? "no timestamp"
                     : candidate.meta.timestamp.c_str());
    std::fprintf(out, "  %-28s %-26s %14s %14s %9s  %s\n", "scenario",
                 "metric", "baseline", "candidate", "delta", "verdict");
    for (const Comparison &c : report.comparisons) {
        const char *verdict =
            c.verdict == Verdict::regressed
                ? "REGRESSED"
                : c.verdict == Verdict::improved ? "improved" : "ok";
        std::fprintf(out, "  %-28s %-26s %14.4g %14.4g %+8.2f%%  %s\n",
                     c.scenario.c_str(), c.metric.c_str(), c.baseline,
                     c.candidate, c.deltaPct, verdict);
    }
    for (const std::string &note : report.notes)
        std::fprintf(out, "  note: %s\n", note.c_str());
    std::fprintf(out, "  %s\n",
                 report.anyRegression
                     ? "RESULT: regression beyond the noise band"
                     : "RESULT: no regression beyond the noise band");
}

} // namespace f4t::obs
