#include "obs/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace f4t::obs
{

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind != Kind::object)
        return nullptr;
    for (const auto &[k, v] : obj) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

namespace
{

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    run(std::string *error)
    {
        JsonValue value;
        if (!parseValue(value)) {
            fail("invalid value");
        } else {
            skipWs();
            if (pos_ != text_.size())
                fail("trailing characters after document");
        }
        if (!error_.empty()) {
            if (error) {
                *error = error_ + " at byte " + std::to_string(errorPos_);
            }
            return std::nullopt;
        }
        return value;
    }

  private:
    void
    fail(const char *message)
    {
        if (error_.empty()) {
            error_ = message;
            errorPos_ = pos_;
        }
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (text_.substr(pos_, n) != word)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                // BENCH files are ASCII; decode BMP escapes bytewise
                // (non-ASCII code points degrade to '?', never parsed
                // as structure).
                if (pos_ + 4 > text_.size())
                    return false;
                char hex[5] = {text_[pos_], text_[pos_ + 1],
                               text_[pos_ + 2], text_[pos_ + 3], 0};
                pos_ += 4;
                unsigned code = static_cast<unsigned>(
                    std::strtoul(hex, nullptr, 16));
                out += code < 0x80 ? static_cast<char>(code) : '?';
                break;
              }
              default:
                return false;
            }
        }
        return false; // unterminated
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::string;
            return parseString(out.str);
        }
        if (c == 't') {
            out.kind = JsonValue::Kind::boolean;
            out.b = true;
            return literal("true");
        }
        if (c == 'f') {
            out.kind = JsonValue::Kind::boolean;
            out.b = false;
            return literal("false");
        }
        if (c == 'n') {
            out.kind = JsonValue::Kind::null;
            return literal("null");
        }
        return parseNumber(out);
    }

    bool
    parseNumber(JsonValue &out)
    {
        const char *begin = text_.data() + pos_;
        char *end = nullptr;
        double value = std::strtod(begin, &end);
        if (end == begin)
            return false;
        std::size_t len = static_cast<std::size_t>(end - begin);
        if (pos_ + len > text_.size())
            return false;
        pos_ += len;
        out.kind = JsonValue::Kind::number;
        out.num = value;
        return true;
    }

    bool
    parseArray(JsonValue &out)
    {
        consume('[');
        out.kind = JsonValue::Kind::array;
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            JsonValue element;
            if (!parseValue(element))
                return false;
            out.arr.push_back(std::move(element));
            if (consume(','))
                continue;
            return consume(']');
        }
    }

    bool
    parseObject(JsonValue &out)
    {
        consume('{');
        out.kind = JsonValue::Kind::object;
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(key))
                return false;
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(value))
                return false;
            out.obj.emplace_back(std::move(key), std::move(value));
            if (consume(','))
                continue;
            return consume('}');
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
    std::size_t errorPos_ = 0;
};

} // namespace

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    return Parser(text).run(error);
}

std::optional<std::string>
readFile(const std::string &path, std::string *error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        if (error)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::string content;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        content.append(buf, n);
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    if (!ok) {
        if (error)
            *error = "read error on '" + path + "'";
        return std::nullopt;
    }
    return content;
}

} // namespace f4t::obs
