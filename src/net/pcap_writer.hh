/**
 * @file
 * Standards-compliant pcap capture of simulated link traffic.
 *
 * PcapWriter emits the classic libpcap file format — global header
 * magic 0xa1b2c3d4 (microsecond timestamps), version 2.4, LINKTYPE_
 * ETHERNET — so a capture taken from any simulated link opens directly
 * in Wireshark/tshark/tcpdump. Frames are serialized with
 * Packet::serialize() (exact wire bytes, Ethernet onward) and stamped
 * by splitting the simulation tick (1 ps) into seconds/microseconds.
 *
 * The pcap format itself cannot express simulator-only facts — that a
 * frame was *captured but then dropped* by fault injection, duplicated,
 * or delayed for reordering — so the writer keeps a sidecar index
 * ("<path>.index", one text line per record) and Link annotates the
 * affected records. Capture happens in LinkDirection::send() *before*
 * fault injection, so the .pcap shows what the sender put on the wire
 * and the sidecar says what the cable did to it.
 */

#ifndef F4T_NET_PCAP_WRITER_HH
#define F4T_NET_PCAP_WRITER_HH

#include <cstdio>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace f4t::net
{

struct Packet;

class PcapWriter
{
  public:
    /** Opens @p path and writes the global header; warns on failure. */
    explicit PcapWriter(std::string path);
    ~PcapWriter();

    PcapWriter(const PcapWriter &) = delete;
    PcapWriter &operator=(const PcapWriter &) = delete;

    bool ok() const { return file_ != nullptr; }
    const std::string &path() const { return path_; }

    /**
     * Append one frame captured at @p at on direction @p direction
     * ("a->b" / "b->a"). @return the record index, for annotate().
     */
    std::size_t record(sim::Tick at, const Packet &pkt,
                       const char *direction);

    /** Attach a note ("drop", "duplicate", ...) to a prior record. */
    void annotate(std::size_t index, const std::string &note);

    std::size_t records() const { return entries_.size(); }

    /** Flush the pcap stream and (re)write the sidecar index. */
    void flush();

  private:
    void writeSidecar() const;

    std::FILE *file_ = nullptr;
    std::string path_;

    struct Entry
    {
        sim::Tick at;
        std::string direction;
        std::size_t bytes;
        std::string notes;
    };
    std::vector<Entry> entries_;
};

} // namespace f4t::net

#endif // F4T_NET_PCAP_WRITER_HH
