/**
 * @file
 * Full-duplex point-to-point link model.
 *
 * The evaluation testbed directly connects two endpoints (NIC-to-NIC,
 * NIC-to-FtEngine, or FtEngine-to-FtEngine) with a 100 Gbps cable.
 * Each direction serializes packets at the configured bandwidth —
 * charging the full wire footprint including preamble, IFG, and FCS —
 * and then delivers after the propagation delay.
 *
 * The model is split along the cable: LinkDirection is the transmit
 * half (serialization timing, fault injection, stats, capture) and
 * DeliveryPort is the receive half (arrival ordering and burst-folded
 * handoff to the sink). A same-simulation Link wires each direction
 * straight into a local port; the parallel testbed places the port in
 * the receiving endpoint's partition and bridges the two with a
 * mailbox (net/split_link.hh), with the propagation delay exported as
 * the conservative lookahead. Both arrangements run the identical
 * delivery code on the identical (arrival, order) stream, which is
 * what keeps parallel runs byte-exact against the serial oracle.
 *
 * A FaultInjector can drop, duplicate, or delay (reorder) packets with
 * configured probabilities; the congestion-control experiments
 * (Fig. 14) and the end-to-end reliability property tests use it.
 */

#ifndef F4T_NET_LINK_HH
#define F4T_NET_LINK_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

namespace f4t::net
{

class PcapWriter;

/** Anything that can accept a packet from a link. */
class PacketSink
{
  public:
    virtual ~PacketSink() = default;
    virtual void receivePacket(Packet &&pkt) = 0;
};

/**
 * Process-wide switch for the batched data path. When on (the
 * default), the packet generator hands segments to the link
 * synchronously (stamping Packet::txReady instead of scheduling one
 * host event per segment) and each DeliveryPort groups back-to-back
 * arrivals into one bounded burst per delivery event. Wire timing —
 * serialization start, busy time, arrival tick — is computed
 * identically in both modes; only host-event interleaving (and thus
 * delivery callback timing within the burst-hold window) differs.
 * The differential fuzz tests run both modes and require byte-exact
 * stream agreement.
 */
bool datapathBatchingEnabled();
void setDatapathBatching(bool enabled);

/**
 * Runtime-tunable burst-folding bounds (defaults are the class
 * constants on DeliveryPort). Process-wide like the batching toggle,
 * flipped only while simulations are quiescent; tools/f4t_sweep
 * explores the neighborhood of the hand-tuned defaults.
 */
std::size_t linkMaxBurst();
void setLinkMaxBurst(std::size_t packets);
sim::Tick linkMaxBurstHold();
void setLinkMaxBurstHold(sim::Tick hold);

/** Probabilistic packet perturbation. All probabilities default to 0. */
struct FaultModel
{
    double dropProbability = 0.0;
    double duplicateProbability = 0.0;
    /** Probability of delaying a packet by an extra random interval. */
    double reorderProbability = 0.0;
    /** Maximum extra delay applied to reordered packets. */
    sim::Tick reorderMaxDelay = sim::microsecondsToTicks(50);
    /**
     * Deterministic drop schedule: the first packet sent at or after
     * each listed tick is dropped (sorted ascending). Used by the
     * congestion-control comparison (Fig. 14) so two independent
     * simulations see losses at identical instants.
     */
    std::vector<sim::Tick> dropAtTicks;
    std::uint64_t seed = 1;
};

/**
 * Where a transmit half sends its survivors: a local DeliveryPort in
 * the same simulation, or a cross-partition mailbox (split_link.hh)
 * that replays into a remote port at the next window barrier.
 */
class DeliveryTarget
{
  public:
    virtual ~DeliveryTarget() = default;
    /** Hand over a packet that arrives at absolute tick @p arrival. */
    virtual void deliver(Packet &&pkt, sim::Tick arrival) = 0;
};

/**
 * Receive half of a link direction: orders packets by modeled arrival
 * tick and hands them to the sink, folding back-to-back arrivals into
 * bounded bursts when the batched data path is on. Lives in the
 * *receiving* endpoint's simulation; its inputs are (packet, arrival)
 * pairs in transmit order, so its behavior is a pure function of that
 * stream regardless of which side of a partition boundary produced it.
 */
class DeliveryPort : public sim::SimObject, public DeliveryTarget
{
  public:
    DeliveryPort(sim::Simulation &sim, std::string name)
        : SimObject(sim, std::move(name))
    {}

    /** Connect the receiving end. Must be set before traffic flows. */
    void setSink(PacketSink *sink) { sink_ = sink; }

    void deliver(Packet &&pkt, sim::Tick arrival) override;

    /** Packets one drain event may hand to the sink (burst bound). */
    static constexpr std::size_t maxBurst = 16;
    /** Longest a due packet may wait for trailing burst members. */
    static constexpr sim::Tick maxBurstHold = sim::nanosecondsToTicks(600);

  private:
    void drainPending();

    struct DrainEvent : public sim::Event
    {
        explicit DrainEvent(DeliveryPort &owner) : owner_(owner) {}
        void process() override { owner_.drainPending(); }
        std::string description() const override
        {
            return owner_.name() + ".deliver";
        }
        const char *profileTag() const override
        {
            // Port names carry "link" ("link.aToB"), so the profiler
            // buckets delivery drains into link_switch.
            return owner_.name().c_str();
        }
        DeliveryPort &owner_;
    };

    struct PendingDelivery
    {
        sim::Tick arrival = 0;
        std::uint64_t seq = 0; ///< push order; ties on arrival keep it
        Packet pkt;
    };

    /** Min-heap order on (arrival, push seq) for the std heap calls. */
    static bool
    laterDelivery(const PendingDelivery &a, const PendingDelivery &b)
    {
        return a.arrival != b.arrival ? a.arrival > b.arrival
                                      : a.seq > b.seq;
    }

    PacketSink *sink_ = nullptr;
    DrainEvent drainEvent_{*this};
    /** Min-heap on (arrival, seq): a drain pops only matured packets,
     *  so far-future deliveries are never re-sorted (under fan-in the
     *  shared wire stretches arrivals far past the drain tick). */
    std::vector<PendingDelivery> pending_;
    std::uint64_t pushSeq_ = 0;
    sim::Tick oldestPendingArrival_ = 0;
};

/**
 * Transmit half of a link direction. Owns its serialization state (the
 * time the transmitter is busy until) so both directions are
 * independent, as on a real full-duplex cable. Fault injection runs
 * here — on the sending side — so the injector's RNG stream is
 * consumed in transmit order even when the receiver lives in another
 * partition.
 */
class LinkDirection : public sim::SimObject
{
  public:
    /** Same-simulation form: deliveries land in an owned local port. */
    LinkDirection(sim::Simulation &sim, std::string name,
                  double bandwidth_bits_per_sec,
                  sim::Tick propagation_delay, const FaultModel &faults);

    /**
     * Split form: deliveries go to @p target (a cross-partition
     * conduit ending in a DeliveryPort inside the receiver's
     * simulation). The target must outlive traffic on this direction.
     */
    LinkDirection(sim::Simulation &sim, std::string name,
                  double bandwidth_bits_per_sec,
                  sim::Tick propagation_delay, const FaultModel &faults,
                  DeliveryTarget &target);

    /** Connect the receiving end; same-simulation form only. */
    void
    setSink(PacketSink *sink)
    {
        f4t_assert(localPort_.has_value(),
                   "link '%s' delivers cross-partition; set the sink on "
                   "its DeliveryPort",
                   name().c_str());
        localPort_->setSink(sink);
    }

    /**
     * Test-only hook observing every packet accepted by send(), before
     * fault injection. The packet is mutable so harnesses can corrupt
     * payload bytes deliberately; trace capture uses it read-only.
     */
    using Tap = std::function<void(Packet &)>;
    void setTap(Tap tap) { tap_ = std::move(tap); }

    /**
     * Attach a pcap capture (see net/pcap_writer.hh). Every accepted
     * frame is recorded before fault injection; drop/duplicate/reorder
     * decisions are annotated in the writer's sidecar index. The
     * writer is not owned and must outlive traffic on this direction.
     */
    void
    attachPcap(PcapWriter *writer, const char *label)
    {
        pcap_ = writer;
        pcapLabel_ = label;
    }

    /** Queue a packet for transmission; returns the delivery tick. */
    sim::Tick send(Packet &&pkt);

    std::uint64_t packetsSent() const { return packetsSent_.value(); }
    std::uint64_t packetsDropped() const { return packetsDropped_.value(); }
    std::uint64_t bytesSent() const { return bytesSent_.value(); }

    double bandwidthBitsPerSec() const { return bandwidth_; }
    sim::Tick propagationDelay() const { return propagationDelay_; }
    /** Tick the transmitter finishes serializing everything accepted
     *  so far; a store-and-forward device (net/switch.hh) paces its
     *  egress drain off this instead of guessing wire timing. */
    sim::Tick busyUntil() const { return busyUntil_; }

    // Burst constants kept visible here for existing call sites.
    static constexpr std::size_t maxBurst = DeliveryPort::maxBurst;
    static constexpr sim::Tick maxBurstHold = DeliveryPort::maxBurstHold;

  private:
    void noteFault(const char *kind, const Packet &pkt,
                   std::uint64_t fault_code);

    Tap tap_;
    /** Flight-recorder module id (interned once at construction). */
    std::uint16_t frModule_ = 0;
    PcapWriter *pcap_ = nullptr;
    const char *pcapLabel_ = "";
    double bandwidth_;
    sim::Tick propagationDelay_;
    sim::Tick busyUntil_ = 0;
    FaultModel faults_;
    std::size_t nextScheduledDrop_ = 0;
    sim::Random rng_;

    /** Present in the same-simulation form; absent when split. */
    std::optional<DeliveryPort> localPort_;
    DeliveryTarget *target_ = nullptr;

    sim::Counter packetsSent_;
    sim::Counter packetsDropped_;
    sim::Counter packetsDuplicated_;
    sim::Counter packetsReordered_;
    sim::Counter bytesSent_;
};

/** A bidirectional cable built from two LinkDirections. */
class Link : public sim::SimObject
{
  public:
    Link(sim::Simulation &sim, std::string name,
         double bandwidth_bits_per_sec,
         sim::Tick propagation_delay = sim::nanosecondsToTicks(500),
         const FaultModel &faults = {});

    /** Asymmetric variant: independent fault models per direction
     *  (the fuzzer draws distinct drop/duplicate/reorder rates). */
    Link(sim::Simulation &sim, std::string name,
         double bandwidth_bits_per_sec, sim::Tick propagation_delay,
         const FaultModel &faults_a_to_b,
         const FaultModel &faults_b_to_a);

    /** Attach the two endpoints; direction A->B and B->A. */
    void connect(PacketSink &endpoint_a, PacketSink &endpoint_b);

    /** Direction used by endpoint A to reach endpoint B. */
    LinkDirection &aToB() { return aToB_; }
    /** Direction used by endpoint B to reach endpoint A. */
    LinkDirection &bToA() { return bToA_; }

    /** Capture both directions into one pcap file (interleaved). */
    void
    attachPcap(PcapWriter *writer)
    {
        aToB_.attachPcap(writer, "a->b");
        bToA_.attachPcap(writer, "b->a");
    }

    /**
     * Process-wide hook observing Link construction, so a CLI layer
     * (bench::Obs) can attach pcap writers to every link a binary
     * creates without per-bench plumbing. Empty to uninstall.
     */
    static void setCreationObserver(std::function<void(Link &)> observer);

    /** Derive the reverse-direction fault model the single-model
     *  constructors use (decorrelated RNG seed, same rates). */
    static FaultModel
    reverseFaults(const FaultModel &faults)
    {
        FaultModel reverse = faults;
        reverse.seed = faults.seed * 2654435761ULL + 1;
        return reverse;
    }

  private:
    LinkDirection aToB_;
    LinkDirection bToA_;
};

} // namespace f4t::net

#endif // F4T_NET_LINK_HH
