/**
 * @file
 * Output-queued Ethernet switch with a shared, finite egress buffer.
 *
 * The two-node testbeds cable endpoints directly, which can never show
 * open-loop queue buildup or incast collapse: those need N clients
 * ganging up on one server port. The Switch models the minimal fabric
 * that produces them — store-and-forward, output-queued, with all
 * egress FIFOs drawing on one shared byte pool (the common shallow-
 * buffer merchant-silicon arrangement). When an arriving frame does
 * not fit in the remaining pool the frame is tail-dropped at its
 * egress port and counted; TCP's loss recovery does the rest, which is
 * exactly the dynamics the incast scenarios measure.
 *
 * Wiring reuses the point-to-point cable model unchanged: each switch
 * port is the PacketSink end of an ordinary Link (or SplitLink)
 * toward one endpoint, and the switch transmits through that cable's
 * other LinkDirection. Egress pacing keys off LinkDirection::
 * busyUntil(), so serialization timing, fault injection, and pcap
 * capture on the attached cables all behave exactly as on a direct
 * cable. Because a port's TX half lives in the same partition as the
 * switch, the model works unmodified over SplitLink seams: only the
 * cable's own crossing carries packets between partitions.
 *
 * Forwarding is static: routes are installed per destination IPv4
 * address (addRoute), frames to the broadcast MAC or without an IPv4
 * header (ARP) flood to every port except the ingress. There is no
 * MAC learning — the testbeds pre-install ARP entries anyway, and a
 * deterministic route table keeps the differential contract trivial.
 */

#ifndef F4T_NET_SWITCH_HH
#define F4T_NET_SWITCH_HH

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hh"
#include "net/packet.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"

namespace f4t::net
{

class Switch;

/** One attachment point: the PacketSink a cable delivers into. */
class SwitchPort : public PacketSink
{
  public:
    void receivePacket(Packet &&pkt) override;

  private:
    friend class Switch;
    Switch *switch_ = nullptr;
    std::size_t index_ = 0;
};

struct SwitchConfig
{
    std::size_t numPorts = 2;
    /** Shared egress pool, in wire bytes (frame + framing overhead),
     *  summed across every port's queued frames. */
    std::size_t sharedEgressBytes = 256 * 1024;
    /** Store-and-forward pipeline latency per frame (ingress to
     *  egress-queue admission). */
    sim::Tick forwardingLatency = sim::nanosecondsToTicks(300);
};

class Switch : public sim::SimObject
{
  public:
    Switch(sim::Simulation &sim, std::string name, const SwitchConfig &config);
    ~Switch() override;

    /** The sink a cable's endpoint-facing direction delivers into. */
    SwitchPort &port(std::size_t index);

    /**
     * The transmit half the switch uses to reach the endpoint behind
     * port @p index (the other direction of the same cable). Not
     * owned; must outlive traffic through the switch.
     */
    void attachTx(std::size_t index, LinkDirection &tx);

    /** Install a static route: frames for @p ip leave via @p index. */
    void addRoute(Ipv4Address ip, std::size_t index);

    std::size_t numPorts() const { return ports_.size(); }

    // --- per-port statistics --------------------------------------------

    /** Frames accepted into port @p index's egress FIFO. */
    std::uint64_t enqueued(std::size_t index) const;
    /** Frames handed to port @p index's transmitter. */
    std::uint64_t forwarded(std::size_t index) const;
    /** Frames tail-dropped at port @p index (shared pool full). */
    std::uint64_t droppedOverflow(std::size_t index) const;
    /** Wire bytes handed to port @p index's transmitter. */
    std::uint64_t bytesForwarded(std::size_t index) const;
    /** Frames that arrived on port @p index. */
    std::uint64_t received(std::size_t index) const;
    /** Wire bytes currently queued for port @p index. */
    std::size_t queuedBytes(std::size_t index) const;
    /** Deepest the port's egress queue ever got, in wire bytes. */
    std::size_t peakQueuedBytes(std::size_t index) const;

    // --- whole-switch statistics ----------------------------------------

    std::uint64_t totalForwarded() const;
    std::uint64_t totalDropped() const;
    /** Frames with an IPv4 destination no route matched (dropped). */
    std::uint64_t routeMisses() const { return routeMisses_.value(); }
    /** Wire bytes currently held across all egress queues. */
    std::size_t sharedPoolUsed() const { return sharedUsed_; }
    std::size_t sharedPoolCapacity() const { return config_.sharedEgressBytes; }

  private:
    struct QueuedFrame
    {
        sim::Tick readyAt = 0; ///< store-and-forward admission tick
        Packet pkt;
    };

    struct DrainEvent : public sim::Event
    {
        void process() override { owner->drain(port); }
        std::string description() const override
        {
            return owner->name() + ".port" + std::to_string(port) + ".drain";
        }
        const char *profileTag() const override { return "switch.drain"; }
        Switch *owner = nullptr;
        std::size_t port = 0;
    };

    struct Egress
    {
        explicit Egress(sim::Simulation &sim, const std::string &prefix)
            : enqueued(sim.stats(), prefix + ".enqueued",
                       "frames admitted to the egress queue"),
              forwarded(sim.stats(), prefix + ".forwarded",
                        "frames handed to the transmitter"),
              droppedOverflow(sim.stats(), prefix + ".droppedOverflow",
                              "frames tail-dropped, shared pool full"),
              bytesForwarded(sim.stats(), prefix + ".bytesForwarded",
                             "wire bytes handed to the transmitter"),
              received(sim.stats(), prefix + ".received",
                       "frames that arrived on this port"),
              peakQueuedBytes(sim.stats(), prefix + ".peakQueuedBytes",
                              "deepest egress occupancy, wire bytes")
        {}

        LinkDirection *tx = nullptr;
        std::deque<QueuedFrame> fifo;
        std::size_t queuedBytes = 0;
        DrainEvent drainEvent;

        sim::Counter enqueued;
        sim::Counter forwarded;
        sim::Counter droppedOverflow;
        sim::Counter bytesForwarded;
        sim::Counter received;
        sim::Scalar peakQueuedBytes;
    };

    friend class SwitchPort;

    void ingress(std::size_t in_port, Packet &&pkt);
    void enqueue(std::size_t out_port, Packet &&pkt);
    void drain(std::size_t out_port);
    void auditAccounting() const;

    SwitchConfig config_;
    std::vector<SwitchPort> ports_;
    std::vector<std::unique_ptr<Egress>> egress_;
    // std::map: deterministic iteration, and route tables are tiny.
    std::map<Ipv4Address, std::size_t> routes_;
    std::size_t sharedUsed_ = 0;
    sim::Counter routeMisses_;
    /** Flight-recorder module id (interned once at construction). */
    std::uint16_t frModule_ = 0;
};

} // namespace f4t::net

#endif // F4T_NET_SWITCH_HH
