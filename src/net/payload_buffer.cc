#include "payload_buffer.hh"

namespace f4t::net
{

PayloadBufferPool &
PayloadBufferPool::instance()
{
    // One pool per thread: each partition worker recycles through its
    // own free list with no locking. Buffers migrate — a packet
    // acquired on the sender's worker is released into the receiver's
    // pool after crossing a partition mailbox — so ownership follows
    // the buffer: each is its own heap allocation, owned by whichever
    // free list parks it. A worker thread exiting therefore destroys
    // only the buffers parked in *its* pool; anything still in flight
    // is owned by a live PayloadBuffer and will retire into the
    // releasing thread's pool.
    static thread_local PayloadBufferPool pool;
    return pool;
}

PayloadBufferPool::~PayloadBufferPool()
{
    for (std::vector<std::uint8_t> *bytes : free_)
        delete bytes;
}

std::vector<std::uint8_t> *
PayloadBufferPool::acquire()
{
    if (!free_.empty()) {
        std::vector<std::uint8_t> *bytes = free_.back();
        free_.pop_back();
        return bytes;
    }
    ++allocated_;
    return new std::vector<std::uint8_t>;
}

void
PayloadBufferPool::release(std::vector<std::uint8_t> *bytes)
{
    // Keep the capacity: the next acquire() inherits it, which is the
    // entire point of the pool.
    bytes->clear();
    free_.push_back(bytes);
}

} // namespace f4t::net
