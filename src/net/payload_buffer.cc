#include "payload_buffer.hh"

namespace f4t::net
{

PayloadBufferPool &
PayloadBufferPool::instance()
{
    static PayloadBufferPool pool;
    return pool;
}

std::vector<std::uint8_t> *
PayloadBufferPool::acquire()
{
    if (!free_.empty()) {
        std::vector<std::uint8_t> *bytes = free_.back();
        free_.pop_back();
        return bytes;
    }
    return &arena_.emplace_back();
}

void
PayloadBufferPool::release(std::vector<std::uint8_t> *bytes)
{
    // Keep the capacity: the next acquire() inherits it, which is the
    // entire point of the pool.
    bytes->clear();
    free_.push_back(bytes);
}

} // namespace f4t::net
