/**
 * @file
 * The Packet structure moved across simulated links.
 *
 * A Packet carries parsed headers plus a pooled payload buffer (see
 * payload_buffer.hh — packet payloads are the simulator's dominant
 * allocation source, so their storage recycles through a free list
 * instead of the heap). For speed the simulator normally passes Packet
 * objects around without serializing, but serialize()/parseWire()
 * produce and consume the exact wire bytes (used in tests and wherever
 * checksums must be validated end to end).
 *
 * wireOverheadBytes matches the paper's accounting of 78 B per packet:
 * 18 B Ethernet header + FCS framing counted by the paper, 8 B preamble
 * and 12 B inter-frame gap, plus the 40 B TCP/IP headers carried
 * explicitly here.
 */

#ifndef F4T_NET_PACKET_HH
#define F4T_NET_PACKET_HH

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "net/headers.hh"
#include "net/payload_buffer.hh"
#include "sim/trace_token.hh"

namespace f4t::net
{

/** Non-header bytes the wire charges per frame: preamble + IFG + FCS. */
constexpr std::size_t wireFramingBytes = 8 + 12 + 4;

struct Packet
{
    EthernetHeader eth;

    /** L3/L4 content. ARP frames have no IPv4 header. */
    std::optional<Ipv4Header> ip;
    std::variant<std::monostate, TcpHeader, IcmpMessage, ArpMessage> l4;

    /** TCP or ICMP payload bytes (empty for pure control packets). */
    PayloadBuffer payload;

    /** Causal-trace token of the highest request whose final byte rides
     *  in this segment. Metadata only: serialize()/parseWire() do not
     *  carry it (the wire format is unchanged), so a packet that round-
     *  trips through real bytes loses its token — only the in-memory
     *  fast path, which every world uses, preserves causality. */
    [[no_unique_address]] sim::ctrace::Token trace;

    /** Earliest tick this packet may start serializing on the wire.
     *  Metadata, not wire content: the batched TX path hands packets to
     *  the link synchronously and stamps the modeled readiness here
     *  instead of scheduling one host event per segment; the link takes
     *  max(now, txReady, transmitter busy) as the serialization start,
     *  so wire timing matches the event-per-packet path exactly. */
    std::uint64_t txReady = 0;

    bool isTcp() const { return std::holds_alternative<TcpHeader>(l4); }
    bool isIcmp() const { return std::holds_alternative<IcmpMessage>(l4); }
    bool isArp() const { return std::holds_alternative<ArpMessage>(l4); }

    TcpHeader &tcp() { return std::get<TcpHeader>(l4); }
    const TcpHeader &tcp() const { return std::get<TcpHeader>(l4); }
    IcmpMessage &icmp() { return std::get<IcmpMessage>(l4); }
    const IcmpMessage &icmp() const { return std::get<IcmpMessage>(l4); }
    ArpMessage &arp() { return std::get<ArpMessage>(l4); }
    const ArpMessage &arp() const { return std::get<ArpMessage>(l4); }

    /** Frame length on the cable excluding preamble/IFG/FCS. */
    std::size_t frameBytes() const;

    /**
     * Direction-insensitive 32-bit hash of the TCP connection tuple
     * (both directions of one connection fold to the same value), or
     * 0 for non-TCP frames. Used as the flight recorder's flow key
     * for network-layer records, matching the decoder's --flow
     * drill-down.
     */
    std::uint32_t flowHash32() const;

    /**
     * Bytes the link is occupied for: frame + preamble + IFG + FCS.
     * This is the length used by the link model's timing.
     */
    std::size_t wireBytes() const { return frameBytes() + wireFramingBytes; }

    /** Serialize the frame (Ethernet onward, no preamble/FCS). */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Parse a frame produced by serialize(). Returns std::nullopt when
     * the bytes are malformed or an unsupported ethertype/protocol.
     */
    static std::optional<Packet>
    parseWire(std::span<const std::uint8_t> bytes);

    /** Convenience factory: a TCP packet with addressing filled in. */
    static Packet makeTcp(MacAddress src_mac, MacAddress dst_mac,
                          Ipv4Address src_ip, Ipv4Address dst_ip,
                          const TcpHeader &header,
                          PayloadBuffer payload = {});
};

} // namespace f4t::net

#endif // F4T_NET_PACKET_HH
