#include "link.hh"

#include "net/pcap_writer.hh"
#include "sim/causal_trace.hh"
#include "sim/flight_recorder.hh"
#include "sim/trace.hh"

#include <algorithm>
#include <atomic>

namespace f4t::net
{

namespace
{
std::function<void(Link &)> linkObserver;
/* Read from every partition worker; flipped only while the simulation
 * is quiescent (test setup), but atomic so the flip itself is not a
 * data race under tsan. */
std::atomic<bool> batchingEnabled{true};
std::atomic<std::size_t> burstBound{DeliveryPort::maxBurst};
std::atomic<sim::Tick> burstHoldBound{DeliveryPort::maxBurstHold};
}

bool
datapathBatchingEnabled()
{
    return batchingEnabled.load(std::memory_order_relaxed);
}

void
setDatapathBatching(bool enabled)
{
    batchingEnabled.store(enabled, std::memory_order_relaxed);
}

std::size_t
linkMaxBurst()
{
    return burstBound.load(std::memory_order_relaxed);
}

void
setLinkMaxBurst(std::size_t packets)
{
    burstBound.store(packets > 0 ? packets : 1,
                     std::memory_order_relaxed);
}

sim::Tick
linkMaxBurstHold()
{
    return burstHoldBound.load(std::memory_order_relaxed);
}

void
setLinkMaxBurstHold(sim::Tick hold)
{
    burstHoldBound.store(hold, std::memory_order_relaxed);
}

void
Link::setCreationObserver(std::function<void(Link &)> observer)
{
    linkObserver = std::move(observer);
}

LinkDirection::LinkDirection(sim::Simulation &sim, std::string name,
                             double bandwidth_bits_per_sec,
                             sim::Tick propagation_delay,
                             const FaultModel &faults)
    : SimObject(sim, std::move(name)), bandwidth_(bandwidth_bits_per_sec),
      propagationDelay_(propagation_delay), faults_(faults),
      rng_(faults.seed),
      localPort_(std::in_place, sim, this->name()),
      target_(&*localPort_),
      packetsSent_(sim.stats(), statName("packetsSent"),
                   "packets accepted for transmission"),
      packetsDropped_(sim.stats(), statName("packetsDropped"),
                      "packets dropped by fault injection"),
      packetsDuplicated_(sim.stats(), statName("packetsDuplicated"),
                         "packets duplicated by fault injection"),
      packetsReordered_(sim.stats(), statName("packetsReordered"),
                        "packets delayed by fault injection"),
      bytesSent_(sim.stats(), statName("bytesSent"),
                 "wire bytes transmitted (incl. framing)")
{
    f4t_assert(bandwidth_ > 0, "link '%s' needs positive bandwidth",
               this->name().c_str());
    frModule_ = sim::fr::internModule(this->name());
}

LinkDirection::LinkDirection(sim::Simulation &sim, std::string name,
                             double bandwidth_bits_per_sec,
                             sim::Tick propagation_delay,
                             const FaultModel &faults,
                             DeliveryTarget &target)
    : SimObject(sim, std::move(name)), bandwidth_(bandwidth_bits_per_sec),
      propagationDelay_(propagation_delay), faults_(faults),
      rng_(faults.seed),
      target_(&target),
      packetsSent_(sim.stats(), statName("packetsSent"),
                   "packets accepted for transmission"),
      packetsDropped_(sim.stats(), statName("packetsDropped"),
                      "packets dropped by fault injection"),
      packetsDuplicated_(sim.stats(), statName("packetsDuplicated"),
                         "packets duplicated by fault injection"),
      packetsReordered_(sim.stats(), statName("packetsReordered"),
                        "packets delayed by fault injection"),
      bytesSent_(sim.stats(), statName("bytesSent"),
                 "wire bytes transmitted (incl. framing)")
{
    f4t_assert(bandwidth_ > 0, "link '%s' needs positive bandwidth",
               this->name().c_str());
    f4t_assert(propagationDelay_ > 0,
               "split link '%s' needs positive propagation delay "
               "(it is the conservative lookahead)",
               this->name().c_str());
    frModule_ = sim::fr::internModule(this->name());
}

sim::Tick
LinkDirection::send(Packet &&pkt)
{
    if (tap_)
        tap_(pkt);
    // The batched TX path hands packets over before their modeled
    // emission tick; everything timed below uses the readiness stamp,
    // never the (possibly earlier) host-event time of this call.
    sim::Tick ready =
        std::max(now(), static_cast<sim::Tick>(pkt.txReady));
    // Capture before fault injection: the pcap shows what the sender
    // put on the wire, the sidecar notes what the cable did to it.
    std::size_t pcap_record = 0;
    if (pcap_ != nullptr)
        pcap_record = pcap_->record(ready, pkt, pcapLabel_);
    ++packetsSent_;
    std::size_t wire_bytes = pkt.wireBytes();
    bytesSent_ += wire_bytes;
    sim::fr::record(sim::fr::Kind::linkTx, ready, frModule_,
                    pkt.flowHash32(), wire_bytes);
    F4T_TRACE(Link, "%s: send %zuB wire", name().c_str(), wire_bytes);

    // Serialization: the transmitter is busy for the wire time of this
    // packet starting at max(ready, busyUntil).
    double seconds =
        static_cast<double>(wire_bytes) * 8.0 / bandwidth_;
    sim::Tick tx_time = sim::secondsToTicks(seconds);
    sim::Tick start = std::max(ready, busyUntil_);
    busyUntil_ = start + tx_time;
    sim::Tick arrival = busyUntil_ + propagationDelay_;

    if constexpr (sim::trace::compiledIn) {
        // Wire-stage service begins when the transmitter starts
        // serializing; everything before is head-of-line queueing.
        if (pkt.trace.valid()) {
            if (auto *ct = sim().causalTracer())
                ct->wireService(pkt.trace, start);
        }
    }

    if (nextScheduledDrop_ < faults_.dropAtTicks.size() &&
        ready >= faults_.dropAtTicks[nextScheduledDrop_]) {
        ++nextScheduledDrop_;
        ++packetsDropped_;
        F4T_TRACE(Link, "%s: scheduled drop", name().c_str());
        if (pcap_ != nullptr)
            pcap_->annotate(pcap_record, "drop(scheduled)");
        noteFault("drop(scheduled)", pkt, 1);
        return arrival;
    }

    if (faults_.dropProbability > 0 && rng_.chance(faults_.dropProbability)) {
        ++packetsDropped_;
        F4T_TRACE(Link, "%s: random drop", name().c_str());
        if (pcap_ != nullptr)
            pcap_->annotate(pcap_record, "drop");
        noteFault("drop", pkt, 2);
        return arrival;
    }

    if (faults_.duplicateProbability > 0 &&
        rng_.chance(faults_.duplicateProbability)) {
        ++packetsDuplicated_;
        F4T_TRACE(Link, "%s: duplicate", name().c_str());
        if (pcap_ != nullptr)
            pcap_->annotate(pcap_record, "duplicate");
        noteFault("duplicate", pkt, 3);
        Packet copy = pkt;
        target_->deliver(std::move(copy),
                         arrival + sim::nanosecondsToTicks(100));
    }

    if (faults_.reorderProbability > 0 &&
        rng_.chance(faults_.reorderProbability)) {
        ++packetsReordered_;
        sim::Tick extra = rng_.below(faults_.reorderMaxDelay + 1);
        F4T_TRACE(Link, "%s: reorder +%lluns", name().c_str(),
                  static_cast<unsigned long long>(
                      extra / sim::nanosecondsToTicks(1)));
        if (pcap_ != nullptr)
            pcap_->annotate(pcap_record,
                            "reorder+" + std::to_string(extra) + "ps");
        noteFault("reorder", pkt, 4);
        arrival += extra;
    }

    target_->deliver(std::move(pkt), arrival);
    return arrival;
}

/** Fault bookkeeping (cold path by construction): a timeline instant
 *  plus a flight-recorder record carrying the fault code. */
void
LinkDirection::noteFault(const char *kind, const Packet &pkt,
                         std::uint64_t fault_code)
{
    sim::fr::record(sim::fr::Kind::linkFault, now(), frModule_,
                    pkt.flowHash32(), fault_code);
    if (auto *tl = sim().timeline())
        tl->instant(name(), "fault", kind, now());
}

void
DeliveryPort::deliver(Packet &&pkt, sim::Tick when)
{
    f4t_assert(sink_ != nullptr, "link '%s' has no sink attached",
               name().c_str());
    if (!datapathBatchingEnabled()) {
        // Per-packet reference path: one host event per delivery.
        queue().scheduleCallback(
            when, "link.deliver", [this, p = std::move(pkt)]() mutable {
                sink_->receivePacket(std::move(p));
            });
        return;
    }

    // Batched path: queue the packet and fold back-to-back arrivals
    // into one drain event. The drain may move later to swallow a
    // whole wire train, but never more than maxBurstHold past the
    // earliest queued arrival and never beyond maxBurst packets, and
    // it may always move earlier; a packet is never delivered before
    // its modeled arrival tick.
    pending_.push_back(PendingDelivery{when, pushSeq_++, std::move(pkt)});
    std::push_heap(pending_.begin(), pending_.end(), laterDelivery);
    oldestPendingArrival_ = pending_.front().arrival;
    if (!drainEvent_.scheduled()) {
        queue().schedule(&drainEvent_, when);
        return;
    }
    sim::Tick drain_at = drainEvent_.when();
    if (when < drain_at)
        queue().reschedule(&drainEvent_, when);
    else if (when > drain_at && pending_.size() < linkMaxBurst() &&
             when - oldestPendingArrival_ <= linkMaxBurstHold())
        queue().reschedule(&drainEvent_, when);
}

void
DeliveryPort::drainPending()
{
    sim::Tick due = now();
    // Deliver in modeled arrival order; push order breaks ties so a
    // same-tick duplicate follows its original. Heap pops yield exactly
    // that order, and packets still in flight (reordered far future)
    // stay put — a sink reacting by sending more traffic only pushes.
    while (!pending_.empty() && pending_.front().arrival <= due) {
        std::pop_heap(pending_.begin(), pending_.end(), laterDelivery);
        Packet pkt = std::move(pending_.back().pkt);
        pending_.pop_back();
        sink_->receivePacket(std::move(pkt));
    }

    if (pending_.empty())
        return;
    sim::Tick earliest = pending_.front().arrival;
    oldestPendingArrival_ = earliest;
    if (!drainEvent_.scheduled())
        queue().schedule(&drainEvent_, earliest);
    else if (drainEvent_.when() > earliest)
        queue().reschedule(&drainEvent_, earliest);
}

Link::Link(sim::Simulation &sim, std::string name,
           double bandwidth_bits_per_sec, sim::Tick propagation_delay,
           const FaultModel &faults)
    : Link(sim, std::move(name), bandwidth_bits_per_sec,
           propagation_delay, faults, reverseFaults(faults))
{}

Link::Link(sim::Simulation &sim, std::string name,
           double bandwidth_bits_per_sec, sim::Tick propagation_delay,
           const FaultModel &faults_a_to_b,
           const FaultModel &faults_b_to_a)
    : SimObject(sim, std::move(name)),
      aToB_(sim, this->name() + ".aToB", bandwidth_bits_per_sec,
            propagation_delay, faults_a_to_b),
      bToA_(sim, this->name() + ".bToA", bandwidth_bits_per_sec,
            propagation_delay, faults_b_to_a)
{
    if (linkObserver)
        linkObserver(*this);
}

void
Link::connect(PacketSink &endpoint_a, PacketSink &endpoint_b)
{
    aToB_.setSink(&endpoint_b);
    bToA_.setSink(&endpoint_a);
}

} // namespace f4t::net
