/**
 * @file
 * A set of disjoint half-open intervals over 64-bit stream offsets.
 *
 * Used for out-of-order TCP reassembly: both the FtEngine RX parser
 * (which tracks out-of-sequence chunks logically, Section 4.1.2) and
 * the software reference stack record which byte ranges are present
 * and merge adjacent chunks as data arrives.
 */

#ifndef F4T_NET_INTERVAL_SET_HH
#define F4T_NET_INTERVAL_SET_HH

#include <cstdint>
#include <map>

namespace f4t::net
{

class IntervalSet
{
  public:
    /** Insert [start, end); overlapping/adjacent ranges are merged. */
    void
    insert(std::uint64_t start, std::uint64_t end)
    {
        if (start >= end)
            return;

        // Find the first interval that could touch [start, end).
        auto it = intervals_.upper_bound(start);
        if (it != intervals_.begin()) {
            auto prev = std::prev(it);
            if (prev->second >= start) {
                it = prev;
            }
        }
        while (it != intervals_.end() && it->first <= end) {
            start = start < it->first ? start : it->first;
            end = end > it->second ? end : it->second;
            it = intervals_.erase(it);
        }
        intervals_.emplace(start, end);
    }

    /** Remove everything below @p boundary (consumed in order). */
    void
    eraseBelow(std::uint64_t boundary)
    {
        auto it = intervals_.begin();
        while (it != intervals_.end() && it->second <= boundary)
            it = intervals_.erase(it);
        if (it != intervals_.end() && it->first < boundary) {
            std::uint64_t end = it->second;
            intervals_.erase(it);
            intervals_.emplace(boundary, end);
        }
    }

    /** True when [start, end) is fully contained. */
    bool
    contains(std::uint64_t start, std::uint64_t end) const
    {
        if (start >= end)
            return true;
        auto it = intervals_.upper_bound(start);
        if (it == intervals_.begin())
            return false;
        --it;
        return it->first <= start && end <= it->second;
    }

    /**
     * The contiguous boundary starting from @p from: the largest e such
     * that [from, e) is fully present; returns @p from when the first
     * byte is missing.
     */
    std::uint64_t
    contiguousEnd(std::uint64_t from) const
    {
        auto it = intervals_.upper_bound(from);
        if (it == intervals_.begin())
            return from;
        --it;
        if (it->first > from || it->second <= from)
            return from;
        return it->second;
    }

    std::size_t chunkCount() const { return intervals_.size(); }
    bool empty() const { return intervals_.empty(); }

    void clear() { intervals_.clear(); }

    /** Iteration support (ordered by start offset). */
    auto begin() const { return intervals_.begin(); }
    auto end() const { return intervals_.end(); }

  private:
    std::map<std::uint64_t, std::uint64_t> intervals_; ///< start -> end
};

} // namespace f4t::net

#endif // F4T_NET_INTERVAL_SET_HH
