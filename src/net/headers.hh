/**
 * @file
 * Byte-accurate protocol headers: Ethernet, ARP, IPv4, ICMP, TCP.
 *
 * Each header knows how to serialize itself to and parse itself from
 * network-order bytes. The simulator normally moves parsed structures
 * for speed, but serialization round-trips are covered by tests and are
 * used wherever checksums must be validated.
 */

#ifndef F4T_NET_HEADERS_HH
#define F4T_NET_HEADERS_HH

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "net/seq.hh"

namespace f4t::net
{

/** Writer that appends big-endian fields to a byte vector. */
class ByteWriter
{
  public:
    explicit ByteWriter(std::vector<std::uint8_t> &out) : out_(out) {}

    void u8(std::uint8_t v) { out_.push_back(v); }

    void
    u16(std::uint16_t v)
    {
        out_.push_back(static_cast<std::uint8_t>(v >> 8));
        out_.push_back(static_cast<std::uint8_t>(v));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v >> 16));
        u16(static_cast<std::uint16_t>(v));
    }

    void
    bytes(std::span<const std::uint8_t> b)
    {
        out_.insert(out_.end(), b.begin(), b.end());
    }

  private:
    std::vector<std::uint8_t> &out_;
};

/** Reader that consumes big-endian fields from a byte span. */
class ByteReader
{
  public:
    explicit ByteReader(std::span<const std::uint8_t> in) : in_(in) {}

    bool ok() const { return ok_; }
    std::size_t remaining() const { return in_.size() - pos_; }

    std::uint8_t
    u8()
    {
        if (pos_ + 1 > in_.size()) {
            ok_ = false;
            return 0;
        }
        return in_[pos_++];
    }

    std::uint16_t
    u16()
    {
        std::uint16_t hi = u8();
        std::uint16_t lo = u8();
        return static_cast<std::uint16_t>((hi << 8) | lo);
    }

    std::uint32_t
    u32()
    {
        std::uint32_t hi = u16();
        std::uint32_t lo = u16();
        return (hi << 16) | lo;
    }

    void
    bytes(std::span<std::uint8_t> out)
    {
        if (pos_ + out.size() > in_.size()) {
            ok_ = false;
            return;
        }
        for (auto &b : out)
            b = in_[pos_++];
    }

    void
    skip(std::size_t n)
    {
        if (pos_ + n > in_.size())
            ok_ = false;
        else
            pos_ += n;
    }

  private:
    std::span<const std::uint8_t> in_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

/** 48-bit Ethernet MAC address. */
struct MacAddress
{
    std::array<std::uint8_t, 6> bytes{};

    static MacAddress broadcast()
    {
        return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
    }

    bool operator==(const MacAddress &) const = default;
    bool isBroadcast() const { return *this == broadcast(); }

    std::string toString() const;
};

/** IPv4 address in host order. */
struct Ipv4Address
{
    std::uint32_t value = 0;

    static Ipv4Address fromOctets(std::uint8_t a, std::uint8_t b,
                                  std::uint8_t c, std::uint8_t d)
    {
        return Ipv4Address{(std::uint32_t{a} << 24) |
                           (std::uint32_t{b} << 16) |
                           (std::uint32_t{c} << 8) | d};
    }

    bool operator==(const Ipv4Address &) const = default;
    auto operator<=>(const Ipv4Address &) const = default;

    std::string toString() const;
};

/** Ethernet II frame header. */
struct EthernetHeader
{
    static constexpr std::size_t wireSize = 14;
    static constexpr std::uint16_t typeIpv4 = 0x0800;
    static constexpr std::uint16_t typeArp = 0x0806;

    MacAddress dst;
    MacAddress src;
    std::uint16_t etherType = typeIpv4;

    void serialize(ByteWriter &w) const;
    static EthernetHeader parse(ByteReader &r);

    bool operator==(const EthernetHeader &) const = default;
};

/** ARP request/reply for IPv4-over-Ethernet (RFC 826). */
struct ArpMessage
{
    static constexpr std::size_t wireSize = 28;
    static constexpr std::uint16_t opRequest = 1;
    static constexpr std::uint16_t opReply = 2;

    std::uint16_t opcode = opRequest;
    MacAddress senderMac;
    Ipv4Address senderIp;
    MacAddress targetMac;
    Ipv4Address targetIp;

    void serialize(ByteWriter &w) const;
    static ArpMessage parse(ByteReader &r);

    bool operator==(const ArpMessage &) const = default;
};

/** IPv4 header without options (RFC 791). */
struct Ipv4Header
{
    static constexpr std::size_t wireSize = 20;
    static constexpr std::uint8_t protoIcmp = 1;
    static constexpr std::uint8_t protoTcp = 6;

    std::uint8_t dscp = 0;
    std::uint16_t totalLength = wireSize;
    std::uint16_t identification = 0;
    std::uint8_t ttl = 64;
    std::uint8_t protocol = protoTcp;
    std::uint16_t headerChecksum = 0; ///< filled by serialize()
    Ipv4Address src;
    Ipv4Address dst;

    /** Serialize with the header checksum computed and inserted. */
    void serialize(ByteWriter &w) const;

    /** Serialize using the checksum field verbatim. */
    void serializeRaw(ByteWriter &w) const;

    static Ipv4Header parse(ByteReader &r);

    /** Compute the header checksum over the serialized header. */
    std::uint16_t computeChecksum() const;

    bool operator==(const Ipv4Header &) const = default;
};

/** ICMP echo request/reply (the subset FtEngine implements). */
struct IcmpMessage
{
    static constexpr std::uint8_t typeEchoReply = 0;
    static constexpr std::uint8_t typeEchoRequest = 8;

    std::uint8_t type = typeEchoRequest;
    std::uint8_t code = 0;
    std::uint16_t identifier = 0;
    std::uint16_t sequence = 0;
    std::vector<std::uint8_t> payload;

    std::size_t wireSize() const { return 8 + payload.size(); }

    /** Serialize with the ICMP checksum computed and inserted. */
    void serialize(ByteWriter &w) const;
    static IcmpMessage parse(ByteReader &r);

    bool operator==(const IcmpMessage &) const = default;
};

/** TCP flag bits (RFC 793). */
struct TcpFlags
{
    static constexpr std::uint8_t fin = 0x01;
    static constexpr std::uint8_t syn = 0x02;
    static constexpr std::uint8_t rst = 0x04;
    static constexpr std::uint8_t psh = 0x08;
    static constexpr std::uint8_t ack = 0x10;
    static constexpr std::uint8_t urg = 0x20;
};

/**
 * TCP header, with the single option FtEngine emits (MSS on SYN).
 *
 * The window field is kept in bytes (32-bit) and serialized with a
 * fixed window-scale factor of 2^6, modelling the window-scale option
 * both endpoints of the testbed negotiate (512 KB buffers do not fit
 * the bare 16-bit field). parse() undoes the scaling, so round trips
 * lose at most 63 bytes of granularity — exactly like real scaling.
 */
struct TcpHeader
{
    static constexpr std::size_t baseWireSize = 20;
    static constexpr unsigned windowScaleShift = 6;

    std::uint16_t srcPort = 0;
    std::uint16_t dstPort = 0;
    SeqNum seq = 0;
    SeqNum ack = 0;
    std::uint8_t flags = 0;
    std::uint32_t window = 0;
    std::uint16_t checksum = 0; ///< filled by serializeWithChecksum()
    std::uint16_t urgentPointer = 0;
    /** MSS option value; 0 means the option is absent. */
    std::uint16_t mssOption = 0;

    std::size_t wireSize() const { return baseWireSize + (mssOption ? 4 : 0); }

    bool hasFlag(std::uint8_t f) const { return (flags & f) != 0; }

    /** Serialize without computing the checksum (field used verbatim). */
    void serialize(ByteWriter &w) const;
    static TcpHeader parse(ByteReader &r);

    /**
     * Compute the TCP checksum over pseudo-header, header, and payload,
     * as the packet generator's checksum-offload stage would.
     */
    std::uint16_t computeChecksum(Ipv4Address src, Ipv4Address dst,
                                  std::span<const std::uint8_t> payload) const;

    bool operator==(const TcpHeader &) const = default;
};

} // namespace f4t::net

#endif // F4T_NET_HEADERS_HH
