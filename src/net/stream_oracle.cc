#include "stream_oracle.hh"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace f4t::net
{

namespace
{

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof(buf), fmt, args);
    va_end(args);
    return buf;
}

} // namespace

const char *
toString(ConnOutcome outcome)
{
    switch (outcome) {
      case ConnOutcome::pending: return "pending";
      case ConnOutcome::established: return "established";
      case ConnOutcome::closedClean: return "closedClean";
      case ConnOutcome::reset: return "reset";
    }
    return "?";
}

void
StreamOracle::violation(std::string message)
{
    if (violations_.size() >= maxViolations) {
        ++suppressedViolations_;
        return;
    }
    violations_.push_back(std::move(message));
}

void
StreamOracle::onSend(StreamId stream, std::span<const std::uint8_t> data)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stream &s = streams_[stream];
    for (std::uint8_t byte : data) {
        s.sentDigest = (s.sentDigest ^ byte) * fnvPrime;
        s.inFlight.push_back(byte);
    }
    s.sent += data.size();
}

void
StreamOracle::onDeliver(StreamId stream,
                        std::span<const std::uint8_t> data)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stream &s = streams_[stream];
    for (std::uint8_t byte : data) {
        s.deliveredDigest = (s.deliveredDigest ^ byte) * fnvPrime;
        if (s.inFlight.empty()) {
            if (!s.corrupt) {
                s.corrupt = true;
                violation(format("stream %" PRIu64 ": delivered byte at "
                                 "offset %" PRIu64 " beyond the %" PRIu64
                                 " bytes ever sent",
                                 stream, s.delivered, s.sent));
            }
        } else {
            std::uint8_t expected = s.inFlight.front();
            s.inFlight.pop_front();
            if (byte != expected && !s.corrupt) {
                s.corrupt = true;
                violation(format("stream %" PRIu64 ": corrupt byte at "
                                 "offset %" PRIu64 ": expected 0x%02x, "
                                 "got 0x%02x",
                                 stream, s.delivered, expected, byte));
            }
        }
        ++s.delivered;
    }
}

void
StreamOracle::setOutcome(StreamId conn, ConnOutcome outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    outcomes_[conn] = outcome;
}

ConnOutcome
StreamOracle::outcome(StreamId conn) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = outcomes_.find(conn);
    return it == outcomes_.end() ? ConnOutcome::pending : it->second;
}

void
StreamOracle::expectFullyDelivered(StreamId stream)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = streams_.find(stream);
    if (it == streams_.end())
        return; // nothing was ever sent: vacuously drained
    const Stream &s = it->second;
    if (s.delivered != s.sent) {
        violation(format("stream %" PRIu64 ": only %" PRIu64 " of %" PRIu64
                         " sent bytes delivered",
                         stream, s.delivered, s.sent));
    } else if (s.deliveredDigest != s.sentDigest && !s.corrupt) {
        violation(format("stream %" PRIu64 ": digests diverge at equal "
                         "length %" PRIu64, stream, s.sent));
    }
}

std::uint64_t
StreamOracle::sentBytes(StreamId stream) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = streams_.find(stream);
    return it == streams_.end() ? 0 : it->second.sent;
}

std::uint64_t
StreamOracle::deliveredBytes(StreamId stream) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = streams_.find(stream);
    return it == streams_.end() ? 0 : it->second.delivered;
}

std::uint64_t
StreamOracle::totalSentBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &[id, s] : streams_)
        total += s.sent;
    return total;
}

std::uint64_t
StreamOracle::totalDeliveredBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &[id, s] : streams_)
        total += s.delivered;
    return total;
}

std::uint64_t
StreamOracle::ledgerDigest() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t digest = fnvOffset;
    auto mix = [&digest](std::uint64_t value) {
        for (int i = 0; i < 8; ++i) {
            digest = (digest ^ (value & 0xff)) * fnvPrime;
            value >>= 8;
        }
    };
    for (const auto &[id, s] : streams_) {
        mix(id);
        mix(s.delivered);
        mix(s.deliveredDigest);
    }
    for (const auto &[conn, outcome] : outcomes_) {
        mix(conn);
        mix(static_cast<std::uint64_t>(outcome));
    }
    return digest;
}

std::string
StreamOracle::report() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (violations_.empty())
        return "stream oracle: all checks passed";
    std::string out = format("stream oracle: %zu violation(s)",
                             violations_.size() + suppressedViolations_);
    for (const std::string &v : violations_)
        out += "\n  - " + v;
    if (suppressedViolations_ > 0) {
        out += format("\n  (… %" PRIu64 " further violations suppressed)",
                      suppressedViolations_);
    }
    return out;
}

} // namespace f4t::net
