/**
 * @file
 * Two-way bucketized cuckoo hash table.
 *
 * The RX parser looks up the flow ID of every received packet with a
 * cuckoo hash over the 4-tuple, mirroring the Xilinx HLS packet
 * processing library the paper references. Two hash functions map each
 * key to two buckets of @c slotsPerBucket entries; inserts displace
 * residents along a bounded cuckoo path, with a small stash absorbing
 * rare irreducible collisions (so lookups stay O(1) and hardware-like).
 */

#ifndef F4T_NET_CUCKOO_HASH_HH
#define F4T_NET_CUCKOO_HASH_HH

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"

namespace f4t::net
{

template <typename Key, typename Value, typename Hash,
          std::size_t slotsPerBucket = 4>
class CuckooHashTable
{
  public:
    /**
     * @param bucket_count  number of buckets per way (rounded up to a
     *                      power of two)
     * @param stash_size    entries in the overflow stash
     */
    explicit CuckooHashTable(std::size_t bucket_count,
                             std::size_t stash_size = 8)
        : stash_(stash_size)
    {
        std::size_t n = 1;
        while (n < bucket_count)
            n <<= 1;
        bucketMask_ = n - 1;
        ways_[0].resize(n);
        ways_[1].resize(n);
    }

    std::size_t size() const { return size_; }
    std::size_t capacity() const
    {
        return 2 * (bucketMask_ + 1) * slotsPerBucket + stash_.size();
    }

    /**
     * Insert or update. @return false when the table could not place
     * the key even via the stash (caller falls back / drops the flow).
     */
    bool
    insert(const Key &key, const Value &value)
    {
        if (Value *existing = findMutable(key)) {
            *existing = value;
            return true;
        }

        Entry incoming{key, value, true};
        // Fixed-size chain record: the hot insert path must not touch
        // the allocator even when it has to kick.
        std::array<Entry *, maxKicks_> kick_chain;
        std::size_t kicks = 0;
        for (std::size_t attempt = 0; attempt < maxKicks_; ++attempt) {
            std::size_t way = attempt % 2;
            // Probe BOTH candidate buckets for a free slot before
            // displacing anyone. Kicking from one way while the
            // other still has room sends inserts on needless cuckoo
            // walks at high load factor — long chains, early stash
            // spill, and spurious insert failures well below nominal
            // capacity.
            for (std::size_t probe = 0; probe < 2; ++probe) {
                Bucket &bucket =
                    bucketFor((way + probe) % 2, incoming.key);
                for (Entry &slot : bucket) {
                    if (!slot.occupied) {
                        slot = incoming;
                        ++size_;
                        return true;
                    }
                }
            }
            // Displace the slot chosen by the attempt counter so the
            // cuckoo path cannot ping-pong between two victims.
            Bucket &bucket = bucketFor(way, incoming.key);
            Entry &victim = bucket[attempt % slotsPerBucket];
            std::swap(incoming, victim);
            kick_chain[kicks++] = &victim;
        }

        for (Entry &slot : stash_) {
            if (!slot.occupied) {
                slot = incoming;
                ++size_;
                return true;
            }
        }

        // Roll back the displacement chain so no resident entry is
        // lost; only the new key fails to insert. Reversing the swaps
        // in order restores every victim to its original slot.
        while (kicks > 0)
            std::swap(incoming, *kick_chain[--kicks]);
        return false;
    }

    /** @return the value, or std::nullopt when absent. */
    std::optional<Value>
    find(const Key &key) const
    {
        if (const Value *v = const_cast<CuckooHashTable *>(this)
                                 ->findMutable(key)) {
            return *v;
        }
        return std::nullopt;
    }

    bool contains(const Key &key) const { return find(key).has_value(); }

    /** Remove a key. @return true when it was present. */
    bool
    erase(const Key &key)
    {
        for (std::size_t way = 0; way < 2; ++way) {
            for (Entry &slot : bucketFor(way, key)) {
                if (slot.occupied && slot.key == key) {
                    slot.occupied = false;
                    --size_;
                    return true;
                }
            }
        }
        for (Entry &slot : stash_) {
            if (slot.occupied && slot.key == key) {
                slot.occupied = false;
                --size_;
                return true;
            }
        }
        return false;
    }

    /** Number of stash entries in use (diagnostics / tests). */
    std::size_t
    stashOccupancy() const
    {
        std::size_t n = 0;
        for (const Entry &slot : stash_)
            n += slot.occupied ? 1 : 0;
        return n;
    }

  private:
    struct Entry
    {
        Key key{};
        Value value{};
        bool occupied = false;
    };

    using Bucket = std::array<Entry, slotsPerBucket>;

    std::size_t
    hashFor(std::size_t way, const Key &key) const
    {
        std::size_t h = Hash{}(key);
        if (way == 1) {
            // Second hash: remix so the two ways are independent.
            h ^= h >> 17;
            h *= 0x9e3779b97f4a7c15ULL;
            h ^= h >> 29;
        }
        return h & bucketMask_;
    }

    Bucket &
    bucketFor(std::size_t way, const Key &key)
    {
        return ways_[way][hashFor(way, key)];
    }

    Value *
    findMutable(const Key &key)
    {
        for (std::size_t way = 0; way < 2; ++way) {
            for (Entry &slot : bucketFor(way, key)) {
                if (slot.occupied && slot.key == key)
                    return &slot.value;
            }
        }
        for (Entry &slot : stash_) {
            if (slot.occupied && slot.key == key)
                return &slot.value;
        }
        return nullptr;
    }

    static constexpr std::size_t maxKicks_ = 64;

    std::size_t bucketMask_ = 0;
    std::size_t size_ = 0;
    std::array<std::vector<Bucket>, 2> ways_;
    std::vector<Entry> stash_;
};

} // namespace f4t::net

#endif // F4T_NET_CUCKOO_HASH_HH
