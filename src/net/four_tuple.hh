/**
 * @file
 * The TCP connection 4-tuple used as the RX parser's flow lookup key.
 */

#ifndef F4T_NET_FOUR_TUPLE_HH
#define F4T_NET_FOUR_TUPLE_HH

#include <cstdint>
#include <functional>

#include "net/headers.hh"

namespace f4t::net
{

/** (local ip, local port, remote ip, remote port). */
struct FourTuple
{
    Ipv4Address localIp;
    std::uint16_t localPort = 0;
    Ipv4Address remoteIp;
    std::uint16_t remotePort = 0;

    bool operator==(const FourTuple &) const = default;
    auto operator<=>(const FourTuple &) const = default;

    /** The same connection viewed from the peer. */
    FourTuple
    reversed() const
    {
        return FourTuple{remoteIp, remotePort, localIp, localPort};
    }
};

/** Mixing hash suitable for the cuckoo table's two hash functions. */
struct FourTupleHash
{
    std::size_t
    operator()(const FourTuple &t) const
    {
        std::uint64_t x = (std::uint64_t{t.localIp.value} << 32) |
                          t.remoteIp.value;
        std::uint64_t y = (std::uint64_t{t.localPort} << 16) | t.remotePort;
        x ^= y * 0x9e3779b97f4a7c15ULL;
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        x ^= x >> 33;
        x *= 0xc4ceb9fe1a85ec53ULL;
        x ^= x >> 33;
        return static_cast<std::size_t>(x);
    }
};

} // namespace f4t::net

template <>
struct std::hash<f4t::net::FourTuple>
{
    std::size_t
    operator()(const f4t::net::FourTuple &t) const
    {
        return f4t::net::FourTupleHash{}(t);
    }
};

#endif // F4T_NET_FOUR_TUPLE_HH
