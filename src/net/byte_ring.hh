/**
 * @file
 * A fixed-capacity ring buffer addressed by absolute stream offset.
 *
 * Models the TCP data buffers allocated in hugepages (Section 4.1.1):
 * the transmit ring keeps unacknowledged bytes addressable by sequence
 * offset for (re)transmission; the receive ring accepts out-of-order
 * writes at their sequence offset, exactly like the RX parser's DMA.
 */

#ifndef F4T_NET_BYTE_RING_HH
#define F4T_NET_BYTE_RING_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "sim/logging.hh"

namespace f4t::net
{

class ByteRing
{
  public:
    explicit ByteRing(std::size_t capacity, std::uint64_t base = 0)
        : data_(capacity), base_(base), end_(base)
    {
        f4t_assert(capacity > 0, "byte ring needs nonzero capacity");
    }

    std::size_t capacity() const { return data_.size(); }

    /** Absolute offset of the first retained byte. */
    std::uint64_t base() const { return base_; }

    /** Absolute offset one past the last appended byte. */
    std::uint64_t end() const { return end_; }

    /** Bytes currently retained. */
    std::size_t size() const { return static_cast<std::size_t>(end_ - base_); }

    /** Bytes that can still be appended. */
    std::size_t freeSpace() const { return capacity() - size(); }

    /** Reset to an empty ring starting at @p base. */
    void
    rebase(std::uint64_t base)
    {
        base_ = base;
        end_ = base;
    }

    /** Append up to freeSpace() bytes; returns the count accepted. */
    std::size_t
    append(std::span<const std::uint8_t> bytes)
    {
        std::size_t n = bytes.size() < freeSpace() ? bytes.size()
                                                   : freeSpace();
        copyIn(end_, bytes.first(n));
        end_ += n;
        return n;
    }

    /**
     * Random-offset write within [base, base + capacity), extending
     * end() as needed — the receive-side out-of-order DMA path. The
     * caller guarantees the range fits the window (asserted).
     */
    void
    writeAt(std::uint64_t offset, std::span<const std::uint8_t> bytes)
    {
        f4t_assert(offset >= base_,
                   "ring write below base (%llu < %llu)",
                   static_cast<unsigned long long>(offset),
                   static_cast<unsigned long long>(base_));
        f4t_assert(offset + bytes.size() <= base_ + capacity(),
                   "ring write past capacity");
        copyIn(offset, bytes);
        if (offset + bytes.size() > end_)
            end_ = offset + bytes.size();
    }

    /** Copy out [offset, offset + out.size()); must be retained. */
    void
    copyOut(std::uint64_t offset, std::span<std::uint8_t> out) const
    {
        f4t_assert(offset >= base_ && offset + out.size() <= end_,
                   "ring read [%llu, +%zu) outside [%llu, %llu)",
                   static_cast<unsigned long long>(offset), out.size(),
                   static_cast<unsigned long long>(base_),
                   static_cast<unsigned long long>(end_));
        if (out.empty())
            return;
        std::size_t pos = static_cast<std::size_t>(offset % capacity());
        std::size_t head = std::min(out.size(), capacity() - pos);
        std::memcpy(out.data(), data_.data() + pos, head);
        if (head < out.size())
            std::memcpy(out.data() + head, data_.data(),
                        out.size() - head);
    }

    /** Release @p n bytes from the front (acknowledged / consumed). */
    void
    release(std::size_t n)
    {
        f4t_assert(n <= size(), "releasing %zu of %zu retained bytes", n,
                   size());
        base_ += n;
    }

  private:
    /** Wrap-aware block copy into the ring (at most two memcpys). */
    void
    copyIn(std::uint64_t offset, std::span<const std::uint8_t> bytes)
    {
        if (bytes.empty())
            return;
        std::size_t pos = static_cast<std::size_t>(offset % capacity());
        std::size_t head = std::min(bytes.size(), capacity() - pos);
        std::memcpy(data_.data() + pos, bytes.data(), head);
        if (head < bytes.size())
            std::memcpy(data_.data(), bytes.data() + head,
                        bytes.size() - head);
    }

    std::vector<std::uint8_t> data_;
    std::uint64_t base_;
    std::uint64_t end_;
};

} // namespace f4t::net

#endif // F4T_NET_BYTE_RING_HH
