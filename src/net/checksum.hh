/**
 * @file
 * The Internet checksum (RFC 1071) used by IPv4, TCP, and ICMP.
 */

#ifndef F4T_NET_CHECKSUM_HH
#define F4T_NET_CHECKSUM_HH

#include <cstdint>
#include <span>

namespace f4t::net
{

/**
 * Incremental ones-complement sum accumulator. Feed byte ranges and
 * 16-bit words (e.g., pseudo-header fields), then call finish().
 */
class ChecksumAccumulator
{
  public:
    /** Add a 16-bit word in host order. */
    void
    addWord(std::uint16_t word)
    {
        sum_ += word;
    }

    /** Add a 32-bit value as two 16-bit words. */
    void
    addLong(std::uint32_t value)
    {
        addWord(static_cast<std::uint16_t>(value >> 16));
        addWord(static_cast<std::uint16_t>(value & 0xffff));
    }

    /** Add a byte range, padding an odd tail byte with zero. */
    void
    addBytes(std::span<const std::uint8_t> bytes)
    {
        std::size_t i = 0;
        for (; i + 1 < bytes.size(); i += 2) {
            addWord(static_cast<std::uint16_t>((bytes[i] << 8) |
                                               bytes[i + 1]));
        }
        if (i < bytes.size())
            addWord(static_cast<std::uint16_t>(bytes[i] << 8));
    }

    /** Fold carries and return the ones-complement checksum. */
    std::uint16_t
    finish() const
    {
        std::uint64_t s = sum_;
        while (s >> 16)
            s = (s & 0xffff) + (s >> 16);
        return static_cast<std::uint16_t>(~s & 0xffff);
    }

  private:
    std::uint64_t sum_ = 0;
};

/** One-shot checksum over a byte range. */
inline std::uint16_t
internetChecksum(std::span<const std::uint8_t> bytes)
{
    ChecksumAccumulator acc;
    acc.addBytes(bytes);
    return acc.finish();
}

} // namespace f4t::net

#endif // F4T_NET_CHECKSUM_HH
