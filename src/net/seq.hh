/**
 * @file
 * Modular 32-bit TCP sequence-number arithmetic (RFC 793 / RFC 1982).
 *
 * Every comparison of sequence-space values in the engine, the software
 * reference stack, and the Linux model goes through these helpers so
 * that wrap-around behaviour is consistent everywhere.
 */

#ifndef F4T_NET_SEQ_HH
#define F4T_NET_SEQ_HH

#include <cstdint>

namespace f4t::net
{

/** A TCP sequence-space value. */
using SeqNum = std::uint32_t;

/** a < b in sequence space. */
constexpr bool
seqLt(SeqNum a, SeqNum b)
{
    return static_cast<std::int32_t>(a - b) < 0;
}

/** a <= b in sequence space. */
constexpr bool
seqLeq(SeqNum a, SeqNum b)
{
    return static_cast<std::int32_t>(a - b) <= 0;
}

/** a > b in sequence space. */
constexpr bool
seqGt(SeqNum a, SeqNum b)
{
    return static_cast<std::int32_t>(a - b) > 0;
}

/** a >= b in sequence space. */
constexpr bool
seqGeq(SeqNum a, SeqNum b)
{
    return static_cast<std::int32_t>(a - b) >= 0;
}

/** max in sequence space. */
constexpr SeqNum
seqMax(SeqNum a, SeqNum b)
{
    return seqGt(a, b) ? a : b;
}

/** min in sequence space. */
constexpr SeqNum
seqMin(SeqNum a, SeqNum b)
{
    return seqLt(a, b) ? a : b;
}

/** Signed distance b - a (positive when b is ahead of a). */
constexpr std::int32_t
seqDiff(SeqNum b, SeqNum a)
{
    return static_cast<std::int32_t>(b - a);
}

} // namespace f4t::net

#endif // F4T_NET_SEQ_HH
