#include "headers.hh"

#include <cstdio>

#include "net/checksum.hh"

namespace f4t::net
{

std::string
MacAddress::toString() const
{
    char buf[18];
    std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                  bytes[0], bytes[1], bytes[2], bytes[3], bytes[4],
                  bytes[5]);
    return buf;
}

std::string
Ipv4Address::toString() const
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff,
                  (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
    return buf;
}

void
EthernetHeader::serialize(ByteWriter &w) const
{
    w.bytes(dst.bytes);
    w.bytes(src.bytes);
    w.u16(etherType);
}

EthernetHeader
EthernetHeader::parse(ByteReader &r)
{
    EthernetHeader h;
    r.bytes(h.dst.bytes);
    r.bytes(h.src.bytes);
    h.etherType = r.u16();
    return h;
}

void
ArpMessage::serialize(ByteWriter &w) const
{
    w.u16(1);      // hardware type: Ethernet
    w.u16(0x0800); // protocol type: IPv4
    w.u8(6);       // hardware address length
    w.u8(4);       // protocol address length
    w.u16(opcode);
    w.bytes(senderMac.bytes);
    w.u32(senderIp.value);
    w.bytes(targetMac.bytes);
    w.u32(targetIp.value);
}

ArpMessage
ArpMessage::parse(ByteReader &r)
{
    ArpMessage m;
    r.skip(6); // hardware/protocol type and lengths
    m.opcode = r.u16();
    r.bytes(m.senderMac.bytes);
    m.senderIp.value = r.u32();
    r.bytes(m.targetMac.bytes);
    m.targetIp.value = r.u32();
    return m;
}

std::uint16_t
Ipv4Header::computeChecksum() const
{
    std::vector<std::uint8_t> raw;
    ByteWriter w(raw);
    Ipv4Header copy = *this;
    copy.headerChecksum = 0;
    copy.serializeRaw(w);
    return internetChecksum(raw);
}

void
Ipv4Header::serializeRaw(ByteWriter &w) const
{
    w.u8(0x45); // version 4, IHL 5
    w.u8(dscp);
    w.u16(totalLength);
    w.u16(identification);
    w.u16(0x4000); // flags: don't fragment; offset 0
    w.u8(ttl);
    w.u8(protocol);
    w.u16(headerChecksum);
    w.u32(src.value);
    w.u32(dst.value);
}

void
Ipv4Header::serialize(ByteWriter &w) const
{
    Ipv4Header copy = *this;
    copy.headerChecksum = copy.computeChecksum();
    copy.serializeRaw(w);
}

Ipv4Header
Ipv4Header::parse(ByteReader &r)
{
    Ipv4Header h;
    r.skip(1); // version / IHL (options unsupported by FtEngine)
    h.dscp = r.u8();
    h.totalLength = r.u16();
    h.identification = r.u16();
    r.skip(2); // flags / fragment offset
    h.ttl = r.u8();
    h.protocol = r.u8();
    h.headerChecksum = r.u16();
    h.src.value = r.u32();
    h.dst.value = r.u32();
    return h;
}

void
IcmpMessage::serialize(ByteWriter &w) const
{
    std::vector<std::uint8_t> raw;
    ByteWriter body(raw);
    body.u8(type);
    body.u8(code);
    body.u16(0); // checksum placeholder
    body.u16(identifier);
    body.u16(sequence);
    body.bytes(payload);
    std::uint16_t csum = internetChecksum(raw);
    raw[2] = static_cast<std::uint8_t>(csum >> 8);
    raw[3] = static_cast<std::uint8_t>(csum);
    w.bytes(raw);
}

IcmpMessage
IcmpMessage::parse(ByteReader &r)
{
    IcmpMessage m;
    m.type = r.u8();
    m.code = r.u8();
    r.skip(2); // checksum
    m.identifier = r.u16();
    m.sequence = r.u16();
    m.payload.resize(r.remaining());
    r.bytes(m.payload);
    return m;
}

void
TcpHeader::serialize(ByteWriter &w) const
{
    w.u16(srcPort);
    w.u16(dstPort);
    w.u32(seq);
    w.u32(ack);
    std::uint8_t data_offset_words =
        static_cast<std::uint8_t>(wireSize() / 4);
    w.u8(static_cast<std::uint8_t>(data_offset_words << 4));
    w.u8(flags);
    std::uint32_t scaled = window >> windowScaleShift;
    w.u16(static_cast<std::uint16_t>(scaled > 0xffff ? 0xffff : scaled));
    w.u16(checksum);
    w.u16(urgentPointer);
    if (mssOption) {
        w.u8(2); // option kind: MSS
        w.u8(4); // option length
        w.u16(mssOption);
    }
}

TcpHeader
TcpHeader::parse(ByteReader &r)
{
    TcpHeader h;
    h.srcPort = r.u16();
    h.dstPort = r.u16();
    h.seq = r.u32();
    h.ack = r.u32();
    std::uint8_t offset_byte = r.u8();
    h.flags = r.u8();
    h.window = static_cast<std::uint32_t>(r.u16()) << windowScaleShift;
    h.checksum = r.u16();
    h.urgentPointer = r.u16();

    std::size_t header_len = static_cast<std::size_t>(offset_byte >> 4) * 4;
    std::size_t option_len =
        header_len > baseWireSize ? header_len - baseWireSize : 0;
    while (option_len > 0 && r.ok()) {
        std::uint8_t kind = r.u8();
        --option_len;
        if (kind == 0) { // end of options
            r.skip(option_len);
            break;
        }
        if (kind == 1) // NOP
            continue;
        std::uint8_t len = r.u8();
        if (len < 2 || static_cast<std::size_t>(len) - 1 > option_len)
            break;
        option_len -= len - 1;
        if (kind == 2 && len == 4) {
            h.mssOption = r.u16();
        } else {
            r.skip(static_cast<std::size_t>(len) - 2);
        }
    }
    return h;
}

std::uint16_t
TcpHeader::computeChecksum(Ipv4Address src, Ipv4Address dst,
                           std::span<const std::uint8_t> payload) const
{
    ChecksumAccumulator acc;
    // Pseudo-header.
    acc.addLong(src.value);
    acc.addLong(dst.value);
    acc.addWord(Ipv4Header::protoTcp);
    acc.addWord(static_cast<std::uint16_t>(wireSize() + payload.size()));

    std::vector<std::uint8_t> raw;
    ByteWriter w(raw);
    TcpHeader copy = *this;
    copy.checksum = 0;
    copy.serialize(w);
    acc.addBytes(raw);
    acc.addBytes(payload);
    return acc.finish();
}

} // namespace f4t::net
