/**
 * @file
 * PayloadBuffer: pooled byte storage for packet payloads.
 *
 * Every data-bearing simulated packet used to carry its payload in a
 * std::vector constructed at the producer (packet generator, software
 * TCP) and freed wherever the Packet died — typically inside a link
 * delivery callback. At bulk-transfer rates that is two allocator
 * round-trips per packet on the hottest path in the simulator.
 *
 * A PayloadBuffer instead borrows a byte vector from a process-wide
 * recycling pool and returns it on destruction; the vector keeps its
 * capacity between uses, so steady-state packet traffic performs no
 * allocation at all once the pool has warmed to the working set of
 * in-flight packets. The interface mirrors the vector subset the
 * simulator uses, plus implicit std::span conversions so existing
 * span-based consumers (checksums, byte rings, DMA models) are
 * untouched.
 *
 * An empty buffer owns no pooled storage: control packets (pure ACKs,
 * SYN/FIN) never touch the pool.
 *
 * The pool is per-thread (one instance per partition worker), so the
 * hot acquire/release path stays lock-free under the parallel
 * executor. Buffers may be released into a different thread's pool
 * than they were acquired from — packets migrate across partition
 * mailboxes — which is safe because each buffer is an independent
 * heap allocation owned by whichever free list it is parked in (a
 * pool destructor frees only its parked buffers, so a worker thread
 * exiting cannot invalidate buffers that migrated elsewhere).
 */

#ifndef F4T_NET_PAYLOAD_BUFFER_HH
#define F4T_NET_PAYLOAD_BUFFER_HH

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "sim/check.hh"

namespace f4t::net
{

/** The recycling pool behind PayloadBuffer (see file comment). */
class PayloadBufferPool
{
  public:
    static PayloadBufferPool &instance();

    ~PayloadBufferPool();

    std::vector<std::uint8_t> *acquire();
    void release(std::vector<std::uint8_t> *bytes);

    // --- introspection (tests, perf harnesses) --------------------------

    /** Buffers this pool ever constructed (its high-water mark). */
    std::size_t allocated() const { return allocated_; }
    /** Buffers parked and ready for reuse. */
    std::size_t freeCount() const { return free_.size(); }
    /** Constructed-here minus parked-here. Single-threaded this is
     *  the live-buffer count; under partition migration a pool can
     *  park buffers born elsewhere, so compare deltas on one thread. */
    std::size_t outstanding() const { return allocated() - freeCount(); }

  private:
    PayloadBufferPool() = default;

    std::size_t allocated_ = 0;
    std::vector<std::vector<std::uint8_t> *> free_;
};

class PayloadBuffer
{
  public:
    PayloadBuffer() = default;

    explicit PayloadBuffer(std::size_t size) { resize(size); }

    PayloadBuffer(std::initializer_list<std::uint8_t> init)
    {
        assign(init.begin(), init.size());
    }

    /** Converting constructor: copy a plain byte vector's contents. */
    PayloadBuffer(const std::vector<std::uint8_t> &v)
    {
        assign(v.data(), v.size());
    }

    /**
     * Converting constructor from an expiring vector: the pooled
     * buffer swaps with it, donating the vector's capacity to the
     * pool rather than copying.
     */
    PayloadBuffer(std::vector<std::uint8_t> &&v)
    {
        if (!v.empty()) {
            bytes_ = PayloadBufferPool::instance().acquire();
            bytes_->swap(v);
        }
    }

    PayloadBuffer(const PayloadBuffer &other)
    {
        notePayloadCopy(other.size());
        assign(other.data(), other.size());
    }

    PayloadBuffer(PayloadBuffer &&other) noexcept : bytes_(other.bytes_)
    {
        other.bytes_ = nullptr;
    }

    PayloadBuffer &
    operator=(const PayloadBuffer &other)
    {
        if (this != &other) {
            notePayloadCopy(other.size());
            assign(other.data(), other.size());
        }
        return *this;
    }

    PayloadBuffer &
    operator=(PayloadBuffer &&other) noexcept
    {
        if (this != &other) {
            releaseStorage();
            bytes_ = other.bytes_;
            other.bytes_ = nullptr;
        }
        return *this;
    }

    PayloadBuffer &
    operator=(std::initializer_list<std::uint8_t> init)
    {
        assign(init.begin(), init.size());
        return *this;
    }

    ~PayloadBuffer() { releaseStorage(); }

    std::size_t size() const { return bytes_ != nullptr ? bytes_->size() : 0; }
    bool empty() const { return size() == 0; }

    std::uint8_t *data() { return bytes_ != nullptr ? bytes_->data() : nullptr; }
    const std::uint8_t *
    data() const
    {
        return bytes_ != nullptr ? bytes_->data() : nullptr;
    }

    std::uint8_t *begin() { return data(); }
    std::uint8_t *end() { return data() + size(); }
    const std::uint8_t *begin() const { return data(); }
    const std::uint8_t *end() const { return data() + size(); }

    std::uint8_t &operator[](std::size_t i) { return (*bytes_)[i]; }
    const std::uint8_t &operator[](std::size_t i) const { return (*bytes_)[i]; }

    void
    resize(std::size_t size)
    {
        if (bytes_ == nullptr) {
            if (size == 0)
                return;
            bytes_ = PayloadBufferPool::instance().acquire();
        }
        bytes_->resize(size);
    }

    void
    clear()
    {
        if (bytes_ != nullptr)
            bytes_->clear();
    }

    void
    assign(const std::uint8_t *src, std::size_t size)
    {
        resize(size);
        if (size > 0)
            std::copy(src, src + size, bytes_->data());
    }

    // No explicit span conversion operators: begin()/end() return raw
    // pointers, so PayloadBuffer models contiguous_range + sized_range
    // and std::span's range constructor covers every span-taking call
    // site. (An operator span alongside that constructor would make the
    // two conversion paths ambiguous.)

    friend bool
    operator==(const PayloadBuffer &a, const PayloadBuffer &b)
    {
        return std::equal(a.begin(), a.end(), b.begin(), b.end());
    }

    // --- copy accounting (checks builds only) ---------------------------
    //
    // A packet should move through the pipeline by transferring its
    // pooled buffer, never by duplicating bytes. The counter makes the
    // claim testable: the clean bulk-transfer regression test asserts
    // it stays at zero; fault injection (packet duplication) and
    // deliberate harness copies are the only legitimate increments.

    /** Byte-copying PayloadBuffer copies since the last reset.
     *  Always 0 in checks-off builds. */
    static std::uint64_t
    copiesObserved()
    {
        return copyCount_.load(std::memory_order_relaxed);
    }

    static void
    resetCopyCount()
    {
        copyCount_.store(0, std::memory_order_relaxed);
    }

  private:
    static void
    notePayloadCopy(std::size_t size)
    {
        if constexpr (sim::checksEnabled) {
            if (size > 0)
                copyCount_.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /** Atomic: duplicate-fault copies happen on partition workers. */
    static inline std::atomic<std::uint64_t> copyCount_{0};

    void
    releaseStorage()
    {
        if (bytes_ != nullptr) {
            PayloadBufferPool::instance().release(bytes_);
            bytes_ = nullptr;
        }
    }

    std::vector<std::uint8_t> *bytes_ = nullptr;
};

} // namespace f4t::net

#endif // F4T_NET_PAYLOAD_BUFFER_HH
