#include "net/split_link.hh"

namespace f4t::net
{

SplitLink::SplitLink(sim::Simulation &sim_a, sim::Simulation &sim_b,
                     std::string name, double bandwidth_bits_per_sec,
                     sim::Tick propagation_delay, const FaultModel &faults)
    : SplitLink(sim_a, sim_b, std::move(name), bandwidth_bits_per_sec,
                propagation_delay, faults, Link::reverseFaults(faults))
{}

SplitLink::SplitLink(sim::Simulation &sim_a, sim::Simulation &sim_b,
                     std::string name, double bandwidth_bits_per_sec,
                     sim::Tick propagation_delay,
                     const FaultModel &faults_a_to_b,
                     const FaultModel &faults_b_to_a)
    : portAtB_(sim_b, name + ".aToB"), portAtA_(sim_a, name + ".bToA"),
      abCrossing_(portAtB_, propagation_delay),
      baCrossing_(portAtA_, propagation_delay),
      aToB_(sim_a, name + ".aToB", bandwidth_bits_per_sec,
            propagation_delay, faults_a_to_b, abCrossing_),
      bToA_(sim_b, name + ".bToA", bandwidth_bits_per_sec,
            propagation_delay, faults_b_to_a, baCrossing_)
{}

void
SplitLink::connect(PacketSink &endpoint_a, PacketSink &endpoint_b)
{
    portAtB_.setSink(&endpoint_b);
    portAtA_.setSink(&endpoint_a);
}

} // namespace f4t::net
