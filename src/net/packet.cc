#include "packet.hh"

#include "net/four_tuple.hh"

#include <tuple>

namespace f4t::net
{

std::size_t
Packet::frameBytes() const
{
    std::size_t len = EthernetHeader::wireSize;
    if (ip)
        len += Ipv4Header::wireSize;
    if (isTcp())
        len += tcp().wireSize();
    else if (isIcmp())
        len += icmp().wireSize() - icmp().payload.size();
    else if (isArp())
        len += ArpMessage::wireSize;
    len += payload.size();
    // Minimum Ethernet frame is 60 B before FCS; short frames are padded.
    return len < 60 ? 60 : len;
}

std::uint32_t
Packet::flowHash32() const
{
    if (!isTcp() || !ip)
        return 0;
    const TcpHeader &hdr = tcp();
    // Canonical orientation so both directions fold to one key.
    FourTuple t{ip->src, hdr.srcPort, ip->dst, hdr.dstPort};
    if (std::tie(t.localIp.value, t.localPort) >
        std::tie(t.remoteIp.value, t.remotePort)) {
        t = t.reversed();
    }
    std::size_t h = FourTupleHash{}(t);
    return static_cast<std::uint32_t>(h ^ (h >> 32));
}

std::vector<std::uint8_t>
Packet::serialize() const
{
    std::vector<std::uint8_t> out;
    ByteWriter w(out);
    eth.serialize(w);
    if (isArp()) {
        arp().serialize(w);
    } else if (ip) {
        Ipv4Header ip_copy = *ip;
        std::size_t l4_len = 0;
        if (isTcp())
            l4_len = tcp().wireSize() + payload.size();
        else if (isIcmp())
            l4_len = icmp().wireSize();
        ip_copy.totalLength =
            static_cast<std::uint16_t>(Ipv4Header::wireSize + l4_len);
        ip_copy.serialize(w);
        if (isTcp()) {
            TcpHeader tcp_copy = tcp();
            tcp_copy.checksum =
                tcp_copy.computeChecksum(ip_copy.src, ip_copy.dst, payload);
            tcp_copy.serialize(w);
            w.bytes(payload);
        } else if (isIcmp()) {
            icmp().serialize(w);
        }
    }
    // Pad to the 60 B minimum frame size.
    while (out.size() < 60)
        out.push_back(0);
    return out;
}

std::optional<Packet>
Packet::parseWire(std::span<const std::uint8_t> bytes)
{
    ByteReader r(bytes);
    Packet pkt;
    pkt.eth = EthernetHeader::parse(r);
    if (!r.ok())
        return std::nullopt;

    if (pkt.eth.etherType == EthernetHeader::typeArp) {
        pkt.l4 = ArpMessage::parse(r);
        return r.ok() ? std::optional<Packet>(std::move(pkt)) : std::nullopt;
    }
    if (pkt.eth.etherType != EthernetHeader::typeIpv4)
        return std::nullopt;

    Ipv4Header ip = Ipv4Header::parse(r);
    if (!r.ok())
        return std::nullopt;
    if (ip.totalLength < Ipv4Header::wireSize)
        return std::nullopt;
    std::size_t l4_len = ip.totalLength - Ipv4Header::wireSize;
    if (l4_len > r.remaining())
        return std::nullopt;
    pkt.ip = ip;

    if (ip.protocol == Ipv4Header::protoTcp) {
        TcpHeader tcp = TcpHeader::parse(r);
        if (!r.ok() || l4_len < tcp.wireSize())
            return std::nullopt;
        pkt.l4 = tcp;
        pkt.payload.resize(l4_len - tcp.wireSize());
        r.bytes(pkt.payload);
    } else if (ip.protocol == Ipv4Header::protoIcmp) {
        // ICMP payload length is bounded by the IPv4 total length, not
        // by the padded frame size.
        std::vector<std::uint8_t> icmp_bytes(l4_len);
        r.bytes(icmp_bytes);
        if (!r.ok())
            return std::nullopt;
        ByteReader icmp_reader(icmp_bytes);
        pkt.l4 = IcmpMessage::parse(icmp_reader);
    } else {
        return std::nullopt;
    }
    return r.ok() ? std::optional<Packet>(std::move(pkt)) : std::nullopt;
}

Packet
Packet::makeTcp(MacAddress src_mac, MacAddress dst_mac, Ipv4Address src_ip,
                Ipv4Address dst_ip, const TcpHeader &header,
                PayloadBuffer payload)
{
    Packet pkt;
    pkt.eth.src = src_mac;
    pkt.eth.dst = dst_mac;
    pkt.eth.etherType = EthernetHeader::typeIpv4;
    Ipv4Header ip;
    ip.src = src_ip;
    ip.dst = dst_ip;
    ip.protocol = Ipv4Header::protoTcp;
    ip.totalLength = static_cast<std::uint16_t>(
        Ipv4Header::wireSize + header.wireSize() + payload.size());
    pkt.ip = ip;
    pkt.l4 = header;
    pkt.payload = std::move(payload);
    return pkt;
}

} // namespace f4t::net
