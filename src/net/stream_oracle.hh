/**
 * @file
 * StreamOracle: an application-layer ledger of every byte a stream
 * producer hands to the transport, verified byte-for-byte against what
 * the consumer eventually reads.
 *
 * TCP's contract is exact in-order delivery of the byte stream. The
 * oracle enforces it independently of the stack under test: the sender
 * side registers each send() payload (onSend), the receiver side
 * registers each recv() result (onDeliver), and the oracle checks that
 * the delivered stream is a byte-identical prefix of the sent stream.
 * Only the in-flight window (sent minus delivered) is buffered, so
 * memory stays bounded by the transport's own buffering.
 *
 * Violations are collected, not thrown: fuzz harnesses print the
 * reproducing seed and scenario before failing, which an abort inside
 * the oracle would preclude. Per-stream FNV-1a digests of the full
 * sent/delivered streams feed the differential layer — two worlds that
 * ran the same scenario must agree on delivered byte counts and
 * digests even though their timing differs.
 */

#ifndef F4T_NET_STREAM_ORACLE_HH
#define F4T_NET_STREAM_ORACLE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace f4t::net
{

/** Terminal state of a tracked connection, for differential checks. */
enum class ConnOutcome : std::uint8_t
{
    pending,     ///< never finished establishing
    established, ///< up, but neither side closed
    closedClean, ///< FIN handshake completed
    reset,       ///< torn down by RST
};

const char *toString(ConnOutcome outcome);

class StreamOracle
{
  public:
    /** One simplex byte stream; the harness picks the key scheme
     *  (e.g. connection-index * 2 + direction). */
    using StreamId = std::uint64_t;

    /** Producer side: @p data was accepted by the transport's send(). */
    void onSend(StreamId stream, std::span<const std::uint8_t> data);

    /** Consumer side: @p data came out of the transport's recv(). */
    void onDeliver(StreamId stream, std::span<const std::uint8_t> data);

    /** Record the terminal state of a logical connection. */
    void setOutcome(StreamId conn, ConnOutcome outcome);
    ConnOutcome outcome(StreamId conn) const;

    /** Assert (as a recorded violation) that the stream fully drained. */
    void expectFullyDelivered(StreamId stream);

    std::uint64_t sentBytes(StreamId stream) const;
    std::uint64_t deliveredBytes(StreamId stream) const;
    std::uint64_t totalSentBytes() const;
    std::uint64_t totalDeliveredBytes() const;

    /**
     * Order-independent digest of the final ledger (per-stream byte
     * counts, stream digests, and connection outcomes). Two worlds
     * that delivered the same bytes to the same streams agree on it.
     */
    std::uint64_t ledgerDigest() const;

    /** Post-run inspection only: call after traffic has stopped. */
    bool
    passed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return violations_.empty();
    }
    /** Post-run inspection only (returns a reference into the ledger). */
    const std::vector<std::string> &violations() const
    {
        return violations_;
    }

    /** Multi-line human-readable report of all recorded violations. */
    std::string report() const;

  private:
    struct Stream
    {
        std::uint64_t sent = 0;
        std::uint64_t delivered = 0;
        std::uint64_t sentDigest = fnvOffset;
        std::uint64_t deliveredDigest = fnvOffset;
        /** Sent-but-undelivered bytes (the verification window). */
        std::deque<std::uint8_t> inFlight;
        bool corrupt = false; ///< first mismatch already reported
    };

    static constexpr std::uint64_t fnvOffset = 0xcbf29ce484222325ULL;
    static constexpr std::uint64_t fnvPrime = 0x100000001b3ULL;
    static constexpr std::size_t maxViolations = 16;

    void violation(std::string message);

    /**
     * One oracle is shared by both ends of every tracked stream; under
     * the parallel testbed those ends live in different partitions, so
     * every public method serializes on this lock. The ledger itself
     * stays deterministic — per-stream state is keyed data, and the
     * digest is order-independent across streams — so cross-thread
     * interleaving of *different* streams cannot change any result.
     */
    mutable std::mutex mutex_;

    // std::map: deterministic iteration order for ledgerDigest().
    std::map<StreamId, Stream> streams_;
    std::map<StreamId, ConnOutcome> outcomes_;
    std::vector<std::string> violations_;
    std::uint64_t suppressedViolations_ = 0;
};

} // namespace f4t::net

#endif // F4T_NET_STREAM_ORACLE_HH
