#include "pcap_writer.hh"

#include <cstdint>

#include "net/packet.hh"
#include "sim/logging.hh"

namespace f4t::net
{

namespace
{

/* Classic libpcap global header (24 bytes, host-endian per the format:
 * readers detect byte order from the magic). */
struct PcapFileHeader
{
    std::uint32_t magic = 0xa1b2c3d4; ///< microsecond-timestamp magic
    std::uint16_t versionMajor = 2;
    std::uint16_t versionMinor = 4;
    std::int32_t thisZone = 0;
    std::uint32_t sigfigs = 0;
    std::uint32_t snaplen = 65535;
    std::uint32_t network = 1; ///< LINKTYPE_ETHERNET
};

struct PcapRecordHeader
{
    std::uint32_t tsSec;
    std::uint32_t tsUsec;
    std::uint32_t inclLen;
    std::uint32_t origLen;
};

static_assert(sizeof(PcapFileHeader) == 24, "pcap global header is 24 B");
static_assert(sizeof(PcapRecordHeader) == 16, "pcap record header is 16 B");

} // namespace

PcapWriter::PcapWriter(std::string path) : path_(std::move(path))
{
    file_ = std::fopen(path_.c_str(), "wb");
    if (file_ == nullptr) {
        f4t_warn("pcap: cannot open '%s' for writing", path_.c_str());
        return;
    }
    PcapFileHeader header;
    std::fwrite(&header, sizeof header, 1, file_);
}

PcapWriter::~PcapWriter()
{
    if (file_ != nullptr) {
        flush();
        std::fclose(file_);
    }
}

std::size_t
PcapWriter::record(sim::Tick at, const Packet &pkt, const char *direction)
{
    std::size_t index = entries_.size();
    std::vector<std::uint8_t> bytes = pkt.serialize();
    entries_.push_back(Entry{at, direction, bytes.size(), {}});
    if (file_ == nullptr)
        return index;

    constexpr sim::Tick ticksPerUsec = sim::ticksPerSecond / 1'000'000;
    PcapRecordHeader header;
    header.tsSec = static_cast<std::uint32_t>(at / sim::ticksPerSecond);
    header.tsUsec = static_cast<std::uint32_t>(
        (at % sim::ticksPerSecond) / ticksPerUsec);
    header.inclLen = static_cast<std::uint32_t>(bytes.size());
    header.origLen = static_cast<std::uint32_t>(bytes.size());
    std::fwrite(&header, sizeof header, 1, file_);
    std::fwrite(bytes.data(), 1, bytes.size(), file_);
    return index;
}

void
PcapWriter::annotate(std::size_t index, const std::string &note)
{
    if (index >= entries_.size())
        return;
    std::string &notes = entries_[index].notes;
    if (!notes.empty())
        notes += ',';
    notes += note;
}

void
PcapWriter::flush()
{
    if (file_ != nullptr)
        std::fflush(file_);
    writeSidecar();
}

void
PcapWriter::writeSidecar() const
{
    if (entries_.empty())
        return;
    std::string sidecar_path = path_ + ".index";
    std::FILE *sidecar = std::fopen(sidecar_path.c_str(), "w");
    if (sidecar == nullptr)
        return;
    std::fprintf(sidecar, "# record tick_ps direction frame_bytes notes\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        const Entry &e = entries_[i];
        std::fprintf(sidecar, "%zu %llu %s %zu %s\n", i,
                     static_cast<unsigned long long>(e.at),
                     e.direction.c_str(), e.bytes,
                     e.notes.empty() ? "-" : e.notes.c_str());
    }
    std::fclose(sidecar);
}

} // namespace f4t::net
