/**
 * @file
 * Cross-partition cable for the parallel simulation kernel.
 *
 * A SplitLink is the two-Simulation counterpart of net::Link: each
 * direction's transmit half (LinkDirection — serialization timing,
 * fault injection, stats) lives in the sending endpoint's partition
 * and its receive half (DeliveryPort — arrival ordering, burst
 * folding) in the receiving endpoint's partition. The two are bridged
 * by a LinkCrossing: a bounded SPSC mailbox of (arrival tick, packet)
 * entries pushed in transmit order during a window and replayed into
 * the remote port at the next barrier.
 *
 * The propagation delay is exported as the channel's conservative
 * lookahead: a packet sent at tick t inside window [T, T+L] has
 * arrival = busyUntil + propagation ≥ t + L ≥ the next barrier, so a
 * barrier drain never schedules into a partition's past. Fault
 * perturbations only push arrivals later (duplicate +100 ns, reorder
 * +extra), so they inherit the bound.
 *
 * Determinism: the mailbox preserves transmit order, the port assigns
 * its tie-breaking sequence numbers in replay order, and the port's
 * burst heuristics see the identical (arrival, order) stream a serial
 * Link's port would see — which is how parallel runs stay byte-exact
 * against the single-threaded oracle.
 */

#ifndef F4T_NET_SPLIT_LINK_HH
#define F4T_NET_SPLIT_LINK_HH

#include <string>

#include "net/link.hh"
#include "sim/parallel.hh"
#include "sim/spsc_mailbox.hh"

namespace f4t::net
{

/**
 * One direction's partition bridge: DeliveryTarget for the transmit
 * half, CrossChannel for the executor. Push side runs on the sending
 * partition's worker; drainInto() runs on the coordinator at a window
 * barrier, while every worker is parked.
 */
class LinkCrossing : public sim::CrossChannel, public DeliveryTarget
{
  public:
    LinkCrossing(DeliveryPort &port, sim::Tick lookahead)
        : port_(port), lookahead_(lookahead)
    {
        f4t_assert(lookahead_ > 0,
                   "link crossing into '%s' needs positive lookahead",
                   port.name().c_str());
    }

    void
    deliver(Packet &&pkt, sim::Tick arrival) override
    {
        mailbox_.push(CrossEvent{arrival, std::move(pkt)});
    }

    sim::Tick lookahead() const override { return lookahead_; }

    std::size_t
    drainInto() override
    {
        return mailbox_.drain([this](CrossEvent &&event) {
            port_.deliver(std::move(event.pkt), event.arrival);
        });
    }

    bool idle() const override { return mailbox_.empty(); }

    /** Ring overflows since construction (see SpscMailbox). */
    std::uint64_t spillsObserved() const override
    {
        return mailbox_.spillsObserved();
    }

  private:
    struct CrossEvent
    {
        sim::Tick arrival = 0;
        Packet pkt;
    };

    DeliveryPort &port_;
    sim::Tick lookahead_;
    sim::SpscMailbox<CrossEvent> mailbox_;
};

/**
 * A bidirectional cable between two partitions. API mirrors net::Link
 * so testbeds can swap one for the other; registerChannels() must be
 * called on the executor that advances both simulations.
 */
class SplitLink
{
  public:
    SplitLink(sim::Simulation &sim_a, sim::Simulation &sim_b,
              std::string name, double bandwidth_bits_per_sec,
              sim::Tick propagation_delay = sim::nanosecondsToTicks(500),
              const FaultModel &faults = {});

    /** Asymmetric variant: independent fault models per direction. */
    SplitLink(sim::Simulation &sim_a, sim::Simulation &sim_b,
              std::string name, double bandwidth_bits_per_sec,
              sim::Tick propagation_delay,
              const FaultModel &faults_a_to_b,
              const FaultModel &faults_b_to_a);

    /** Attach the two endpoints; endpoint A lives in sim_a. */
    void connect(PacketSink &endpoint_a, PacketSink &endpoint_b);

    /** Direction used by endpoint A to reach endpoint B (in sim_a). */
    LinkDirection &aToB() { return aToB_; }
    /** Direction used by endpoint B to reach endpoint A (in sim_b). */
    LinkDirection &bToA() { return bToA_; }

    /** Register both crossings with the executor (lookahead export). */
    void
    registerChannels(sim::ParallelExecutor &executor)
    {
        executor.addChannel(abCrossing_);
        executor.addChannel(baCrossing_);
    }

  private:
    // Receive halves live in the *destination* partitions and carry
    // the direction's name so drain events read "<link>.aToB.deliver"
    // exactly as on a same-simulation Link.
    DeliveryPort portAtB_; ///< in sim_b; receives the A->B direction
    DeliveryPort portAtA_; ///< in sim_a; receives the B->A direction
    LinkCrossing abCrossing_;
    LinkCrossing baCrossing_;
    LinkDirection aToB_; ///< in sim_a
    LinkDirection bToA_; ///< in sim_b
};

} // namespace f4t::net

#endif // F4T_NET_SPLIT_LINK_HH
