#include "net/switch.hh"

#include "sim/flight_recorder.hh"

#include <algorithm>

namespace f4t::net
{

void
SwitchPort::receivePacket(Packet &&pkt)
{
    f4t_assert(switch_ != nullptr, "switch port used before wiring");
    switch_->ingress(index_, std::move(pkt));
}

Switch::Switch(sim::Simulation &sim, std::string name,
               const SwitchConfig &config)
    : SimObject(sim, std::move(name)),
      config_(config),
      ports_(config.numPorts),
      routeMisses_(sim.stats(), statName("routeMisses"),
                   "frames with no matching route (dropped)")
{
    f4t_assert(config_.numPorts >= 2, "switch '%s' needs >= 2 ports",
               this->name().c_str());
    frModule_ = sim::fr::internModule(this->name());
    egress_.reserve(config_.numPorts);
    for (std::size_t i = 0; i < config_.numPorts; ++i) {
        ports_[i].switch_ = this;
        ports_[i].index_ = i;
        auto e = std::make_unique<Egress>(
            sim, statName("port" + std::to_string(i)));
        e->drainEvent.owner = this;
        e->drainEvent.port = i;
        egress_.push_back(std::move(e));
    }
    sim.registerAudit(this, statName("egressAccounting"),
                      [this] { auditAccounting(); });
}

Switch::~Switch()
{
    sim().deregisterAudits(this);
}

SwitchPort &
Switch::port(std::size_t index)
{
    f4t_assert(index < ports_.size(), "switch '%s' has no port %zu",
               name().c_str(), index);
    return ports_[index];
}

void
Switch::attachTx(std::size_t index, LinkDirection &tx)
{
    f4t_assert(index < egress_.size(), "switch '%s' has no port %zu",
               name().c_str(), index);
    egress_[index]->tx = &tx;
}

void
Switch::addRoute(Ipv4Address ip, std::size_t index)
{
    f4t_assert(index < egress_.size(), "switch '%s' has no port %zu",
               name().c_str(), index);
    routes_[ip] = index;
}

void
Switch::ingress(std::size_t in_port, Packet &&pkt)
{
    ++egress_[in_port]->received;

    // Flood broadcasts and non-IP control frames (ARP) out every other
    // port; each copy is charged against the shared pool separately.
    if (pkt.eth.dst.isBroadcast() || !pkt.ip.has_value()) {
        for (std::size_t out = 0; out < egress_.size(); ++out) {
            if (out == in_port)
                continue;
            enqueue(out, Packet(pkt));
        }
        return;
    }

    auto route = routes_.find(pkt.ip->dst);
    if (route == routes_.end()) {
        ++routeMisses_;
        return;
    }
    enqueue(route->second, std::move(pkt));
}

void
Switch::enqueue(std::size_t out_port, Packet &&pkt)
{
    Egress &e = *egress_[out_port];
    std::size_t wire = pkt.wireBytes();
    if (sharedUsed_ + wire > config_.sharedEgressBytes) {
        ++e.droppedOverflow;
        sim::fr::record(sim::fr::Kind::switchDrop, now(), frModule_,
                        pkt.flowHash32(), out_port, sharedUsed_);
        return;
    }
    sharedUsed_ += wire;
    e.queuedBytes += wire;
    if (static_cast<double>(e.queuedBytes) > e.peakQueuedBytes.value())
        e.peakQueuedBytes = static_cast<double>(e.queuedBytes);
    ++e.enqueued;

    // The frame was produced by an upstream transmit path that may have
    // stamped a modeled readiness tick; it does not apply to the
    // switch's own transmitter.
    pkt.txReady = 0;

    sim::fr::record(sim::fr::Kind::switchEnqueue, now(), frModule_,
                    pkt.flowHash32(), out_port, e.queuedBytes);
    sim::Tick ready = now() + config_.forwardingLatency;
    e.fifo.push_back(QueuedFrame{ready, std::move(pkt)});
    // An armed drain always targets the queue head, which is no later
    // than this frame; only an idle queue needs a fresh event.
    if (!e.drainEvent.scheduled())
        queue().schedule(&e.drainEvent, ready);
    sim().maybeAudit();
}

void
Switch::drain(std::size_t out_port)
{
    Egress &e = *egress_[out_port];
    f4t_assert(e.tx != nullptr,
               "switch '%s' port %zu has no transmitter attached",
               name().c_str(), out_port);
    while (!e.fifo.empty()) {
        QueuedFrame &head = e.fifo.front();
        sim::Tick start = std::max(head.readyAt, e.tx->busyUntil());
        if (start > now()) {
            queue().schedule(&e.drainEvent, start);
            return;
        }
        Packet pkt = std::move(head.pkt);
        std::size_t wire = pkt.wireBytes();
        e.fifo.pop_front();
        f4t_assert(e.queuedBytes >= wire && sharedUsed_ >= wire,
                   "switch '%s' egress byte accounting underflow",
                   name().c_str());
        e.queuedBytes -= wire;
        sharedUsed_ -= wire;
        ++e.forwarded;
        e.bytesForwarded += wire;
        sim::fr::record(sim::fr::Kind::switchForward, now(), frModule_,
                        pkt.flowHash32(), out_port, wire);
        e.tx->send(std::move(pkt));
    }
}

void
Switch::auditAccounting() const
{
    std::size_t total = 0;
    for (std::size_t i = 0; i < egress_.size(); ++i) {
        const Egress &e = *egress_[i];
        std::size_t recount = 0;
        for (const QueuedFrame &q : e.fifo)
            recount += q.pkt.wireBytes();
        f4t_assert(recount == e.queuedBytes,
                   "switch '%s' port %zu queuedBytes %zu != recount %zu",
                   name().c_str(), i, e.queuedBytes, recount);
        f4t_assert(e.enqueued.value() ==
                       e.forwarded.value() + e.fifo.size(),
                   "switch '%s' port %zu frame conservation broken",
                   name().c_str(), i);
        total += e.queuedBytes;
    }
    f4t_assert(total == sharedUsed_,
               "switch '%s' shared pool %zu != per-port sum %zu",
               name().c_str(), sharedUsed_, total);
    f4t_assert(sharedUsed_ <= config_.sharedEgressBytes,
               "switch '%s' shared pool over capacity", name().c_str());
}

std::uint64_t
Switch::enqueued(std::size_t index) const
{
    return egress_[index]->enqueued.value();
}

std::uint64_t
Switch::forwarded(std::size_t index) const
{
    return egress_[index]->forwarded.value();
}

std::uint64_t
Switch::droppedOverflow(std::size_t index) const
{
    return egress_[index]->droppedOverflow.value();
}

std::uint64_t
Switch::bytesForwarded(std::size_t index) const
{
    return egress_[index]->bytesForwarded.value();
}

std::uint64_t
Switch::received(std::size_t index) const
{
    return egress_[index]->received.value();
}

std::size_t
Switch::queuedBytes(std::size_t index) const
{
    return egress_[index]->queuedBytes;
}

std::size_t
Switch::peakQueuedBytes(std::size_t index) const
{
    return static_cast<std::size_t>(egress_[index]->peakQueuedBytes.value());
}

std::uint64_t
Switch::totalForwarded() const
{
    std::uint64_t total = 0;
    for (const auto &e : egress_)
        total += e->forwarded.value();
    return total;
}

std::uint64_t
Switch::totalDropped() const
{
    std::uint64_t total = 0;
    for (const auto &e : egress_)
        total += e->droppedOverflow.value();
    return total;
}

} // namespace f4t::net
