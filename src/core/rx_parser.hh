/**
 * @file
 * The RX parser (Section 4.1.2): pre-processes received packets into
 * events.
 *
 * For every TCP packet it (1) retrieves the flow ID from a cuckoo hash
 * over the 4-tuple, (2) DMAs the payload into the host TCP data buffer
 * if it fits the receive window — in order or not — and (3) performs
 * logical reassembly: out-of-sequence chunks are recorded and merged,
 * and the application-visible boundary only advances over contiguous
 * data. The resulting event carries only cumulative state (peer ACK,
 * window, the reassembled boundary) plus flags, which is what lets the
 * event handler accumulate it by overwriting.
 *
 * SYN packets for listening ports allocate new flows through the
 * engine. The hardware bounds per-flow out-of-sequence chunk storage;
 * packets beyond the bound are dropped (TCP retransmission recovers).
 */

#ifndef F4T_CORE_RX_PARSER_HH
#define F4T_CORE_RX_PARSER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "net/cuckoo_hash.hh"
#include "net/four_tuple.hh"
#include "net/interval_set.hh"
#include "net/packet.hh"
#include "sim/simulation.hh"
#include "tcp/tcb.hh"

namespace f4t::core
{

/** Receives in-window payload for delivery to the host buffer. */
class PayloadSink
{
  public:
    virtual ~PayloadSink() = default;

    /** DMA @p data to the flow's receive buffer at wire seq @p seq. */
    virtual void deliverPayload(tcp::FlowId flow, net::SeqNum seq,
                                std::span<const std::uint8_t> data) = 0;
};

struct RxParserConfig
{
    std::size_t maxFlows = 65536;
    std::size_t receiveBufferBytes = 512 * 1024;
    std::size_t maxOooChunks = 16;
};

class RxParser : public sim::SimObject
{
  public:
    using FlowLookup = net::CuckooHashTable<net::FourTuple, tcp::FlowId,
                                            net::FourTupleHash>;
    using EventSink = std::function<void(const tcp::TcpEvent &)>;
    /** Allocate a flow for an incoming SYN; invalidFlowId refuses. */
    using SynHandler = std::function<tcp::FlowId(
        const net::FourTuple &tuple, net::MacAddress peer_mac)>;

    RxParser(sim::Simulation &sim, std::string name,
             FlowLookup &flow_table, const RxParserConfig &config);

    void setEventSink(EventSink sink) { eventSink_ = std::move(sink); }
    void setSynHandler(SynHandler handler) { synHandler_ = std::move(handler); }
    void setPayloadSink(PayloadSink *sink) { payloadSink_ = sink; }

    /** Process one received TCP packet. */
    void processPacket(const net::Packet &pkt);

    /** Advance the window base when the application consumes data. */
    void onUserRead(tcp::FlowId flow, net::SeqNum read_ptr);

    /** Forget the reassembly state of a recycled flow. */
    void dropFlow(tcp::FlowId flow);

    /** The peer's initial receive pointer (irs + 1), once known. */
    net::SeqNum rxStart(tcp::FlowId flow) const;

    std::uint64_t packetsParsed() const { return packetsParsed_.value(); }
    std::uint64_t packetsDropped() const { return packetsDropped_.value(); }

  private:
    struct FlowState
    {
        /** Slot holds live reassembly state (dense array occupancy). */
        bool present = false;
        bool synSeen = false;
        net::SeqNum irs = 0;
        /** Unwrapped reassembled boundary (64-bit extension of seq). */
        std::uint64_t rcvUpToExt = 0;
        /** Base for window clipping (advanced by user reads). */
        std::uint64_t userReadExt = 0;
        net::IntervalSet ooo;
        bool finRecorded = false;
        std::uint64_t finSeqExt = 0;
        bool finReassembled = false;
    };

    std::uint64_t unwrap(const FlowState &state, net::SeqNum seq) const;

    /** Dense per-flow slot, grown on demand; replaces the per-packet
     *  hash lookup with an array index (flow IDs are small engine-
     *  allocated integers). */
    FlowState &flowSlot(tcp::FlowId flow);

    FlowLookup &flowTable_;
    RxParserConfig config_;
    EventSink eventSink_;
    SynHandler synHandler_;
    PayloadSink *payloadSink_ = nullptr;

    std::vector<FlowState> flows_;

    sim::Counter packetsParsed_;
    sim::Counter packetsDropped_;
    sim::Counter oooChunksMerged_;
    sim::Counter payloadBytesAccepted_;
};

} // namespace f4t::core

#endif // F4T_CORE_RX_PARSER_HH
