/**
 * @file
 * The host interface (Sections 4.1.1 and 4.6): FtEngine's side of the
 * PCIe command protocol.
 *
 * Per-thread command queue pairs live in host hugepages. The host
 * rings a hardware doorbell (MMIO) after batching commands; the engine
 * DMA-reads the submission ring in batches, translates commands, and
 * hands them to the engine. Completions are staged per queue,
 * coalesced over a short window, and DMA-written together with the
 * software doorbell; a host-side waker is invoked so sleeping library
 * threads resume polling.
 *
 * The same module implements the payload DMA paths: the packet
 * generator fetches transmit payload from the host TCP data buffers
 * (host-to-device), and the RX parser deposits received payload
 * (device-to-host). Header-only experiments (Fig. 16) disable payload
 * DMA while keeping command traffic — exactly what the paper's custom
 * hardware command generator does.
 */

#ifndef F4T_CORE_HOST_INTERFACE_HH
#define F4T_CORE_HOST_INTERFACE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "core/packet_generator.hh"
#include "core/rx_parser.hh"
#include "host/command_queue.hh"
#include "host/host_memory.hh"
#include "host/pcie.hh"
#include "sim/simulation.hh"
#include "tcp/fpu_program.hh"

namespace f4t::core
{

struct HostInterfaceConfig
{
    std::size_t commandBytes = 16;
    std::size_t fetchBatchMax = 32;
    bool payloadDma = true;
    /** Completion coalescing window. */
    sim::Tick completionFlushDelay = sim::nanosecondsToTicks(100);
};

class HostInterface : public sim::SimObject,
                      public PayloadSource,
                      public PayloadSink
{
  public:
    /** Translated host command, delivered to the engine. */
    using CommandHandler =
        std::function<void(const host::Command &, std::size_t queue)>;
    /** Completions arrived on a queue (wake a sleeping poller). */
    using CompletionWaker = std::function<void(std::size_t queue)>;

    HostInterface(sim::Simulation &sim, std::string name,
                  host::PcieModel &pcie, const HostInterfaceConfig &config);

    void setCommandHandler(CommandHandler handler)
    {
        commandHandler_ = std::move(handler);
    }
    void setCompletionWaker(CompletionWaker waker)
    {
        waker_ = std::move(waker);
    }
    void setHostMemory(host::HostMemory *memory) { hostMemory_ = memory; }

    /** Register a per-thread queue pair; returns its index. */
    std::size_t attachQueue(host::QueuePair *pair);
    std::size_t queueCount() const { return queues_.size(); }
    host::QueuePair &queuePair(std::size_t index)
    {
        return *queues_.at(index).pair;
    }

    // --- host to engine ------------------------------------------------------
    /** The hardware doorbell was observed (after MMIO latency). */
    void onDoorbell(std::size_t queue_index);

    // --- engine to host ---------------------------------------------------------
    /** Flow to completion-queue assignment (RSS, Section 4.6). */
    void setFlowQueue(tcp::FlowId flow, std::size_t queue_index);
    std::size_t flowQueue(tcp::FlowId flow) const;

    /** Sequence bases for payload DMA offset conversion. */
    void setFlowSeqBase(tcp::FlowId flow, net::SeqNum tx_start,
                        net::SeqNum rx_start);
    void setRxStart(tcp::FlowId flow, net::SeqNum rx_start);

    /** Stage a completion command toward the flow's queue. */
    void postCompletion(tcp::FlowId flow, const host::Command &command);

    /** Forget a recycled flow. */
    void dropFlow(tcp::FlowId flow);

    // --- payload DMA ------------------------------------------------------------
    sim::Tick fetchPayload(tcp::FlowId flow, net::SeqNum seq,
                           std::span<std::uint8_t> out) override;
    void deliverPayload(tcp::FlowId flow, net::SeqNum seq,
                        std::span<const std::uint8_t> data) override;

    std::uint64_t commandsFetched() const { return commandsFetched_.value(); }
    std::uint64_t completionsPosted() const
    {
        return completionsPosted_.value();
    }

  private:
    struct FlowState
    {
        std::size_t queueIndex = 0;
        net::SeqNum txStart = 0;
        net::SeqNum rxStart = 0;
        bool rxStartKnown = false;
    };

    struct QueueState
    {
        host::QueuePair *pair = nullptr;
        bool fetchInProgress = false;
        std::vector<host::Command> stagedCompletions;
        bool flushScheduled = false;
    };

    void startFetch(std::size_t queue_index);
    void flushCompletions(std::size_t queue_index);
    FlowState &flowState(tcp::FlowId flow);

    host::PcieModel &pcie_;
    HostInterfaceConfig config_;
    host::HostMemory *hostMemory_ = nullptr;
    CommandHandler commandHandler_;
    CompletionWaker waker_;

    std::vector<QueueState> queues_;
    /** Dense per-flow table indexed by engine-allocated flow ID, grown
     *  on demand: the payload DMA paths hit it per packet. */
    std::vector<FlowState> flows_;

    sim::Counter commandsFetched_;
    sim::Counter completionsPosted_;
    sim::Counter doorbells_;
    sim::Counter payloadFetches_;
    sim::Counter payloadDeliveries_;
    sim::Counter cqOverflows_;
};

} // namespace f4t::core

#endif // F4T_CORE_HOST_INTERFACE_HH
