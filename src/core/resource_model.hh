/**
 * @file
 * Analytical FPGA resource model (Section 4.7, Figure 7b).
 *
 * We cannot run Vivado synthesis, so the per-module LUT/FF/BRAM costs
 * are reconstructed from the paper's published utilization of the
 * Xilinx Alveo U280: FtEngine with one FPC uses 16 % LUTs / 11 % FFs /
 * 27 % BRAMs, and with eight FPCs 23 % / 15 % / 32 %. The model keeps
 * a per-component breakdown whose sums reproduce those totals and
 * scales with the FPC count, so configuration studies (more FPCs, more
 * flows) report believable budgets.
 */

#ifndef F4T_CORE_RESOURCE_MODEL_HH
#define F4T_CORE_RESOURCE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace f4t::core
{

/** Absolute resource capacity of the Alveo U280. */
struct U280Capacity
{
    static constexpr std::uint64_t luts = 1'303'680;
    static constexpr std::uint64_t ffs = 2'607'360;
    static constexpr std::uint64_t brams = 2'016; ///< 36 Kb blocks
};

struct ResourceUsage
{
    std::string component;
    std::uint64_t luts = 0;
    std::uint64_t ffs = 0;
    std::uint64_t brams = 0;

    double lutPercent() const
    {
        return 100.0 * static_cast<double>(luts) / U280Capacity::luts;
    }
    double ffPercent() const
    {
        return 100.0 * static_cast<double>(ffs) / U280Capacity::ffs;
    }
    double bramPercent() const
    {
        return 100.0 * static_cast<double>(brams) / U280Capacity::brams;
    }
};

class ResourceModel
{
  public:
    /**
     * Build the component table for a configuration.
     * @param num_fpcs      parallel FPCs
     * @param flows_per_fpc TCB table depth per FPC
     * @param hbm           HBM (vs DDR4) memory controller
     */
    ResourceModel(std::size_t num_fpcs, std::size_t flows_per_fpc,
                  bool hbm);

    const std::vector<ResourceUsage> &components() const
    {
        return components_;
    }

    ResourceUsage total() const;

    /** Formatted table matching Fig. 7b's layout. */
    std::string report() const;

  private:
    std::vector<ResourceUsage> components_;
};

} // namespace f4t::core

#endif // F4T_CORE_RESOURCE_MODEL_HH
