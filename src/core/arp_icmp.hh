/**
 * @file
 * ARP (RFC 826) and ICMP echo (RFC 792) support modules
 * (Section 4.1.2): MAC resolution and ping diagnostics.
 */

#ifndef F4T_CORE_ARP_ICMP_HH
#define F4T_CORE_ARP_ICMP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "net/packet.hh"
#include "sim/simulation.hh"

namespace f4t::core
{

class ArpModule : public sim::SimObject
{
  public:
    using Transmit = std::function<void(net::Packet &&)>;

    ArpModule(sim::Simulation &sim, std::string name, net::Ipv4Address ip,
              net::MacAddress mac)
        : SimObject(sim, std::move(name)), ip_(ip), mac_(mac),
          requestsAnswered_(sim.stats(), statName("requestsAnswered"),
                            "ARP requests answered"),
          repliesLearned_(sim.stats(), statName("repliesLearned"),
                          "ARP replies cached")
    {}

    void setTransmit(Transmit fn) { transmit_ = std::move(fn); }

    /** Static entry (the directly cabled testbed peers). */
    void
    addStaticEntry(net::Ipv4Address ip, net::MacAddress mac)
    {
        table_[ip.value] = mac;
    }

    std::optional<net::MacAddress>
    resolve(net::Ipv4Address ip) const
    {
        auto it = table_.find(ip.value);
        if (it == table_.end())
            return std::nullopt;
        return it->second;
    }

    /** Send an ARP request for @p ip. */
    void
    sendRequest(net::Ipv4Address ip)
    {
        net::Packet pkt;
        pkt.eth.src = mac_;
        pkt.eth.dst = net::MacAddress::broadcast();
        pkt.eth.etherType = net::EthernetHeader::typeArp;
        net::ArpMessage msg;
        msg.opcode = net::ArpMessage::opRequest;
        msg.senderMac = mac_;
        msg.senderIp = ip_;
        msg.targetIp = ip;
        pkt.l4 = msg;
        if (transmit_)
            transmit_(std::move(pkt));
    }

    /** Handle a received ARP packet (request or reply). */
    void
    processPacket(const net::Packet &pkt)
    {
        const net::ArpMessage &msg = pkt.arp();
        // Learn the sender either way.
        table_[msg.senderIp.value] = msg.senderMac;
        if (msg.opcode == net::ArpMessage::opReply) {
            ++repliesLearned_;
            return;
        }
        if (msg.targetIp != ip_)
            return;

        ++requestsAnswered_;
        net::Packet reply;
        reply.eth.src = mac_;
        reply.eth.dst = msg.senderMac;
        reply.eth.etherType = net::EthernetHeader::typeArp;
        net::ArpMessage answer;
        answer.opcode = net::ArpMessage::opReply;
        answer.senderMac = mac_;
        answer.senderIp = ip_;
        answer.targetMac = msg.senderMac;
        answer.targetIp = msg.senderIp;
        reply.l4 = answer;
        if (transmit_)
            transmit_(std::move(reply));
    }

  private:
    net::Ipv4Address ip_;
    net::MacAddress mac_;
    Transmit transmit_;
    std::map<std::uint32_t, net::MacAddress> table_;

    sim::Counter requestsAnswered_;
    sim::Counter repliesLearned_;
};

class IcmpModule : public sim::SimObject
{
  public:
    using Transmit = std::function<void(net::Packet &&)>;

    IcmpModule(sim::Simulation &sim, std::string name, net::Ipv4Address ip,
               net::MacAddress mac)
        : SimObject(sim, std::move(name)), ip_(ip), mac_(mac),
          echoesAnswered_(sim.stats(), statName("echoesAnswered"),
                          "ICMP echo requests answered")
    {}

    void setTransmit(Transmit fn) { transmit_ = std::move(fn); }

    /** Answer echo requests addressed to this endpoint. */
    void
    processPacket(const net::Packet &pkt)
    {
        const net::IcmpMessage &msg = pkt.icmp();
        if (msg.type != net::IcmpMessage::typeEchoRequest || !pkt.ip ||
            pkt.ip->dst != ip_) {
            return;
        }

        ++echoesAnswered_;
        net::Packet reply;
        reply.eth.src = mac_;
        reply.eth.dst = pkt.eth.src;
        reply.eth.etherType = net::EthernetHeader::typeIpv4;
        net::Ipv4Header ip_header;
        ip_header.src = ip_;
        ip_header.dst = pkt.ip->src;
        ip_header.protocol = net::Ipv4Header::protoIcmp;
        reply.ip = ip_header;
        net::IcmpMessage answer = msg;
        answer.type = net::IcmpMessage::typeEchoReply;
        reply.l4 = answer;
        if (transmit_)
            transmit_(std::move(reply));
    }

  private:
    net::Ipv4Address ip_;
    net::MacAddress mac_;
    Transmit transmit_;

    sim::Counter echoesAnswered_;
};

} // namespace f4t::core

#endif // F4T_CORE_ARP_ICMP_HH
