#include "fpc.hh"

#include "sim/causal_trace.hh"
#include "sim/flight_recorder.hh"

namespace f4t::core
{

using tcp::EventFlags;
using tcp::EventValid;

namespace
{

/** Fine-grained profiling bucket per absorbed TCP event kind. */
sim::prof::Cat
profileCategory(tcp::TcpEventType type)
{
    switch (type) {
    case tcp::TcpEventType::userSend: return sim::prof::Cat::fpcUserSend;
    case tcp::TcpEventType::userRecv: return sim::prof::Cat::fpcUserRecv;
    case tcp::TcpEventType::userConnect:
        return sim::prof::Cat::fpcUserConnect;
    case tcp::TcpEventType::userClose: return sim::prof::Cat::fpcUserClose;
    case tcp::TcpEventType::rxSegment: return sim::prof::Cat::fpcRxSegment;
    case tcp::TcpEventType::timeout: return sim::prof::Cat::fpcTimeout;
    }
    return sim::prof::Cat::fpcExec;
}

/** Flight-recorder kind per absorbed TCP event kind (same refinement
 *  the profiler uses, but always compiled in). */
sim::fr::Kind
recorderKind(tcp::TcpEventType type)
{
    switch (type) {
    case tcp::TcpEventType::userSend: return sim::fr::Kind::fpcUserSend;
    case tcp::TcpEventType::userRecv: return sim::fr::Kind::fpcUserRecv;
    case tcp::TcpEventType::userConnect:
        return sim::fr::Kind::fpcUserConnect;
    case tcp::TcpEventType::userClose: return sim::fr::Kind::fpcUserClose;
    case tcp::TcpEventType::rxSegment: return sim::fr::Kind::fpcRxSegment;
    case tcp::TcpEventType::timeout: return sim::fr::Kind::fpcTimeout;
    }
    return sim::fr::Kind::none;
}

} // namespace

Fpc::Fpc(sim::Simulation &sim, std::string name, sim::ClockDomain &domain,
         const tcp::FpuProgram &program, const FpcConfig &config)
    : ClockedObject(sim, std::move(name), domain), program_(program),
      config_(config),
      fpuLatency_(config.fpuLatencyOverride ? config.fpuLatencyOverride
                                            : program.latencyCycles()),
      slots_(config.slots), tcbTable_(config.slots),
      eventTable_(config.slots), cam_(config.slots),
      eventsHandled_(sim.stats(), statName("eventsHandled"),
                     "events absorbed by the event handler"),
      fpuPasses_(sim.stats(), statName("fpuPasses"),
                 "TCBs issued through the FPU"),
      evictions_(sim.stats(), statName("evictions"),
                 "TCBs evicted toward DRAM"),
      swapIns_(sim.stats(), statName("swapIns"), "TCBs accepted from DRAM"),
      dupAckIncrements_(sim.stats(), statName("dupAckIncrements"),
                        "single-cycle duplicate-ACK RMW operations")
{
    f4t_assert(config_.slots > 0, "FPC needs at least one slot");
    frModule_ = sim::fr::internModule(this->name());
    sim.registerAudit(this, statName("audit"),
                      [this] { auditInvariants(); });
}

Fpc::~Fpc()
{
    sim().deregisterAudits(this);
}

void
Fpc::auditInvariants() const
{
    std::size_t occupied = 0;
    std::size_t evicting = 0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        const Slot &slot = slots_[i];
        if (!slot.occupied) {
            F4T_CHECK(!slot.inFpu && !slot.evictFlag,
                      "%s: empty slot %zu carries live flags",
                      name().c_str(), i);
            continue;
        }
        ++occupied;
        evicting += slot.evictFlag ? 1 : 0;
        F4T_CHECK(slot.flow != tcp::invalidFlowId,
                  "%s: occupied slot %zu without a flow", name().c_str(),
                  i);
        F4T_CHECK(cam_.contains(slot.flow) &&
                      cam_.lookup(slot.flow) == i,
                  "%s: slot %zu holds flow %u but the CAM disagrees",
                  name().c_str(), i, slot.flow);
    }
    F4T_CHECK(occupied == cam_.occupancy(),
              "%s: %zu occupied slots vs CAM occupancy %zu",
              name().c_str(), occupied, cam_.occupancy());
    F4T_CHECK(evicting == pendingEvictions_,
              "%s: %zu evict-flagged slots vs maintained counter %zu",
              name().c_str(), evicting, pendingEvictions_);

    for (std::size_t i = 0; i < fpuPipe_.size(); ++i) {
        const FpuJob &job = fpuPipe_.at(i);
        const Slot &slot = slots_[job.slotIndex];
        F4T_CHECK(slot.occupied && slot.inFpu && slot.flow == job.flow,
                  "%s: FPU job for flow %u references slot %zu "
                  "(occupied=%d inFpu=%d flow=%u)", name().c_str(),
                  job.flow, job.slotIndex, slot.occupied ? 1 : 0,
                  slot.inFpu ? 1 : 0, slot.flow);
    }

    for (std::size_t i = 0; i < inputFifo_.size(); ++i) {
        F4T_CHECK(cam_.contains(inputFifo_.at(i).flow),
                  "%s: queued event for non-resident flow %u",
                  name().c_str(), inputFifo_.at(i).flow);
    }
}

void
Fpc::enqueueEvent(const tcp::TcpEvent &event)
{
    f4t_assert(canAcceptEvent(), "%s: event enqueued past backpressure",
               name().c_str());
    f4t_assert(cam_.contains(event.flow),
               "%s: event for non-resident flow %u", name().c_str(),
               event.flow);
    inputFifo_.push_back(event);
    activate();
}

bool
Fpc::canAcceptTcb() const
{
    if (cam_.full())
        return false;
    // Dedicated write port: one swap-in per two-cycle window.
    return !installUsedThisWindow_ ||
           curCycle() >= lastInstallCycle_ + 2;
}

void
Fpc::installTcb(const MigratingTcb &incoming)
{
    f4t_assert(canAcceptTcb(), "%s: swap-in past backpressure",
               name().c_str());
    std::size_t slot_index = cam_.insert(incoming.tcb.flowId);
    Slot &slot = slots_[slot_index];
    slot.occupied = true;
    slot.inFpu = false;
    slot.evictFlag = false;
    slot.flow = incoming.tcb.flowId;
    slot.lastActiveCycle = curCycle();
    // Tokens that travelled with the migrating TCB resume here.
    slot.trace.clear();
    slot.trace.mergeCopy(incoming.trace);
    tcbTable_.peekMutable(slot_index) = incoming.tcb;
    eventTable_.peekMutable(slot_index) = incoming.events;
    lastInstallCycle_ = curCycle();
    installUsedThisWindow_ = true;
    ++swapIns_;
    sim::fr::record(sim::fr::Kind::fpcInstall, now(), frModule_,
                    incoming.tcb.flowId, slot_index);
    F4T_TRACE_CD(Fpc, clock(), "%s: swap-in flow %u -> slot %zu",
                 name().c_str(), incoming.tcb.flowId, slot_index);
    if (auto *tl = sim().timeline())
        tl->instant(name(), "migration",
                    "swap-in flow " + std::to_string(incoming.tcb.flowId),
                    now());
    activate();
}

void
Fpc::requestEvict(tcp::FlowId flow)
{
    std::size_t slot_index = cam_.lookup(flow);
    Slot &slot = slots_[slot_index];
    if (!slot.evictFlag) {
        slot.evictFlag = true;
        ++pendingEvictions_;
    }
    activate();
}

std::optional<tcp::FlowId>
Fpc::coldestFlow() const
{
    std::optional<tcp::FlowId> coldest;
    std::uint64_t best = ~std::uint64_t{0};
    for (const Slot &slot : slots_) {
        if (!slot.occupied || slot.inFpu || slot.evictFlag)
            continue;
        if (slot.lastActiveCycle < best) {
            best = slot.lastActiveCycle;
            coldest = slot.flow;
        }
    }
    return coldest;
}

void
Fpc::releaseFlow(tcp::FlowId flow)
{
    std::size_t slot_index = cam_.lookup(flow);
    Slot &slot = slots_[slot_index];
    f4t_assert(!slot.inFpu, "%s: releasing flow %u while in the FPU",
               name().c_str(), flow);
    if (slot.evictFlag)
        --pendingEvictions_;
    slot = Slot{};
    eventTable_.peekMutable(slot_index).clear();
    cam_.erase(flow);
}

tcp::Tcb
Fpc::peekMergedTcb(tcp::FlowId flow) const
{
    std::size_t slot_index = cam_.lookup(flow);
    return tcp::merge(tcbTable_.peek(slot_index),
                      eventTable_.peek(slot_index));
}

bool
Fpc::slotEligible(const Slot &slot, std::size_t index) const
{
    if (!slot.occupied || slot.inFpu)
        return false;
    if (slot.evictFlag)
        return true;
    if (eventTable_.peek(index).validMask != 0)
        return true;
    return tcbTable_.peek(index).workPending;
}

bool
Fpc::fifoHoldsFlow(tcp::FlowId flow) const
{
    for (std::size_t i = 0; i < inputFifo_.size(); ++i) {
        if (inputFifo_.at(i).flow == flow)
            return true;
    }
    return false;
}

bool
Fpc::tick()
{
    sim::Cycles cycle = curCycle();
    tcbTable_.newCycle(cycle);
    eventTable_.newCycle(cycle);
    if (cycle >= lastInstallCycle_ + 2)
        installUsedThisWindow_ = false;

    // The round-robin scan advances one slot per dotted cycle in the
    // modeled hardware, whether or not this object ticked on that
    // cycle. Fast-forward naps (below) skip host events for cycles
    // proven idle; catch the pointer up for the dotted cycles that
    // elapsed since the last tick before this cycle's phase runs.
    if (!slots_.empty() && cycle > rrSyncedCycle_) {
        std::uint64_t dotted_skipped =
            cycle / 2 - (rrSyncedCycle_ + 1) / 2;
        if (dotted_skipped != 0)
            rrIndex_ = (rrIndex_ + dotted_skipped) % slots_.size();
    }
    rrSyncedCycle_ = cycle;

    const bool even_phase = (cycle & 1) == 0;

    if (even_phase) {
        // Solid cycle: the event handler absorbs one event.
        if (!inputFifo_.empty()) {
            tcp::TcpEvent event = inputFifo_.front();
            inputFifo_.pop_front();
            handleEvent(event, cycle);
        }
    } else {
        // Dotted cycle: FPU write-back, then the TCB manager examines
        // the next round-robin slot and issues it if it has work.
        if (!fpuPipe_.empty() && fpuPipe_.front().readyCycle <= cycle) {
            // Write back straight from the pipe slot: a FpuJob carries
            // a whole TCB, not worth an extra move. Nothing reached
            // from writeback() touches fpuPipe_ (only issueSlot(),
            // called below, pushes to it).
            writeback(fpuPipe_.front(), cycle);
            fpuPipe_.pop_front();
        }

        std::size_t index = rrIndex_;
        if (++rrIndex_ == slots_.size())
            rrIndex_ = 0;
        if (slotEligible(slots_[index], index))
            issueSlot(index, cycle);
    }

    // Events in flight: tick every cycle, no shortcut possible.
    if (!inputFifo_.empty())
        return true;

    // Nothing left for the solid phase. The next cycle that can do
    // work is a dotted one: either the pending FPU write-back, or the
    // first dotted cycle whose round-robin examine lands on an
    // eligible slot. Every path that creates new work in between
    // (enqueueEvent, installTcb, requestEvict) calls activate(), which
    // cuts the nap short, so sleeping to that cycle is exact — the
    // skipped ticks would have examined only ineligible slots.
    sim::Cycles next_dotted = cycle | 1;
    if (next_dotted <= cycle)
        next_dotted += 2;
    sim::Cycles wake = 0;
    if (!fpuPipe_.empty()) {
        wake = fpuPipe_.front().readyCycle | 1;
        if (wake < next_dotted)
            wake = next_dotted;
    }
    for (std::size_t k = 0; k < slots_.size(); ++k) {
        std::size_t index = (rrIndex_ + k) % slots_.size();
        if (slotEligible(slots_[index], index)) {
            sim::Cycles examine = next_dotted + 2 * k;
            if (wake == 0 || examine < wake)
                wake = examine;
            break;
        }
    }
    if (wake == 0)
        return false; // fully idle; activate() rearms
    if (wake == cycle + 1)
        return true;
    activateAt(wake);
    return false;
}

void
Fpc::handleEvent(const tcp::TcpEvent &event, sim::Cycles cycle)
{
    // The dual-memory port schedule (Section 4.2.3): events are only
    // absorbed on solid (even) cycles, so no two events of this FPC can
    // ever be closer than two cycles apart — the paper's stall-free
    // 1-event-per-2-cycles occupancy claim.
    F4T_CHECK((cycle & 1) == 0,
              "%s: event absorbed on a dotted cycle %llu", name().c_str(),
              static_cast<unsigned long long>(cycle));
    F4T_IF_CHECKS({
        F4T_CHECK(!anyEventHandled_ || cycle >= lastEventCycle_ + 2,
                  "%s: events absorbed %llu cycles apart (min 2)",
                  name().c_str(),
                  static_cast<unsigned long long>(cycle - lastEventCycle_));
        lastEventCycle_ = cycle;
        anyEventHandled_ = true;
    });
    // Nested under the FPC tick's module scope: self-time accounting
    // moves this event's cost out of fpc_exec into its kind bucket.
    sim::prof::Scope event_scope(profileCategory(event.type));
    ++eventsHandled_;
    sim::fr::record(recorderKind(event.type), now(), frModule_,
                    event.flow, cycle);
    F4T_TRACE_CD(Fpc, clock(), "%s: absorb %s flow=%u", name().c_str(),
                 tcp::toString(event.type), event.flow);
    // Per-event timeline instants sit on the hottest loop in the
    // simulator, so they compile out with the tracepoints.
    if constexpr (sim::trace::compiledIn) {
        if (auto *tl = sim().timeline())
            tl->instant(name(), "event",
                        std::string(tcp::toString(event.type)) + " flow " +
                            std::to_string(event.flow),
                        now());
    }
    std::size_t index = cam_.lookup(event.flow);
    Slot &slot = slots_[index];
    slot.lastActiveCycle = cycle;

    // The handler reads both memories every cycle for its merged view
    // (needed for single-cycle duplicate-ACK detection); the event
    // record update is the BRAM's single-cycle RMW.
    tcp::EventRecord &record = eventTable_.readModifyWrite(index);
    const tcp::Tcb &stored = tcbTable_.read(index);
    if (tcp::accumulateEvent(record, stored, event))
        ++dupAckIncrements_;

    if constexpr (sim::trace::compiledIn) {
        if (event.trace.valid()) {
            slot.trace.add(event.trace);
            if (auto *ct = sim().causalTracer())
                ct->absorbed(event.trace, now());
        }
    }
}

void
Fpc::issueSlot(std::size_t index, sim::Cycles cycle)
{
    sim::prof::Scope pass_scope(sim::prof::Cat::fpcFpuPass);
    Slot &slot = slots_[index];
    FpuJob &job = fpuPipe_.push_default();
    // Merge straight into the pipe slot: one table read into the job
    // plus the in-place event overlay, no intermediate TCB copy.
    job.merged = tcbTable_.read(index);
    tcp::mergeInto(job.merged, eventTable_.read(index));
    // Clearing the valid bits is the event table's write this cycle.
    tcp::EventRecord cleared;
    eventTable_.peekMutable(index) = cleared;

    slot.inFpu = true;
    ++fpuPasses_;
    job.readyCycle = cycle + fpuLatency_;
    job.slotIndex = index;
    job.flow = slot.flow;

    if constexpr (sim::trace::compiledIn) {
        job.trace.clear(); // pipe slots are pooled; drop stale tokens
        job.trace.merge(std::move(slot.trace));
        if (auto *ct = sim().causalTracer()) {
            sim::Tick at = now();
            job.trace.forEach(
                [&](sim::ctrace::Token t) { ct->execStarted(t, at); });
        }
    }
}

void
Fpc::writeback(FpuJob &job, sim::Cycles cycle)
{
    sim::prof::Scope pass_scope(sim::prof::Cat::fpcFpuPass);
    Slot &slot = slots_[job.slotIndex];
    f4t_assert(slot.occupied && slot.flow == job.flow,
               "%s: write-back to a recycled slot", name().c_str());

    tcp::FpuActions actions;
    program_.process(job.merged, nowUs(), actions);

    F4T_TRACE_CD(Fpc, clock(), "%s: writeback flow %u slot %zu%s",
                 name().c_str(), job.flow, job.slotIndex,
                 slot.evictFlag ? " (evict pending)" : "");
    if constexpr (sim::trace::compiledIn) {
        // One span per FPU pass: issue happened fpuLatency_ cycles ago.
        if (auto *tl = sim().timeline()) {
            sim::Tick start =
                clock().cyclesToTicks(job.readyCycle - fpuLatency_);
            tl->span(name(), "fpu",
                     "pass flow " + std::to_string(job.flow), start,
                     now());
        }
    }

    F4T_IF_CHECKS({
        tcp::checkTcbInvariants(job.merged, name().c_str());
        // Cumulative pointers never regress across an FPU pass once the
        // connection is synchronized (sndNxt may: go-back-N on RTO).
        const tcp::Tcb &prev = tcbTable_.peek(job.slotIndex);
        if (tcp::stateSynchronized(prev.state) &&
            tcp::stateSynchronized(job.merged.state)) {
            F4T_CHECK(net::seqGeq(job.merged.sndUna, prev.sndUna),
                      "%s: flow %u sndUna regressed %u -> %u",
                      name().c_str(), job.flow, prev.sndUna,
                      job.merged.sndUna);
            F4T_CHECK(net::seqGeq(job.merged.rcvNxt, prev.rcvNxt),
                      "%s: flow %u rcvNxt regressed %u -> %u",
                      name().c_str(), job.flow, prev.rcvNxt,
                      job.merged.rcvNxt);
            F4T_CHECK(net::seqGeq(job.merged.req, prev.req),
                      "%s: flow %u req regressed %u -> %u",
                      name().c_str(), job.flow, prev.req, job.merged.req);
            F4T_CHECK(net::seqGeq(job.merged.userRead, prev.userRead),
                      "%s: flow %u userRead regressed %u -> %u",
                      name().c_str(), job.flow, prev.userRead,
                      job.merged.userRead);
        }
    });

    slot.inFpu = false;
    slot.lastActiveCycle = cycle;

    if constexpr (sim::trace::compiledIn) {
        // The pass merged these requests' events: their fpcExec spans
        // end here, before the actions fan out to the packet generator
        // and the host interface.
        if (auto *ct = sim().causalTracer()) {
            sim::Tick at = now();
            job.trace.forEach(
                [&](sim::ctrace::Token t) { ct->processed(t, at); });
        }
        job.trace.clear();
    }

    if (actions.releaseFlow) {
        // Connection finished: recycle the slot.
        if (slot.evictFlag)
            --pendingEvictions_;
        eventTable_.peekMutable(job.slotIndex).clear();
        cam_.erase(slot.flow);
        slot = Slot{};
    } else if (slot.evictFlag && !fifoHoldsFlow(job.flow)) {
        // Evict checker: forward the processed TCB toward DRAM without
        // consuming a table write port. Events that accumulated since
        // the pass started travel with it.
        MigratingTcb leaving;
        leaving.tcb = job.merged;
        leaving.events = eventTable_.peek(job.slotIndex);
        // Tokens of events absorbed after the pass started migrate
        // with their events; their open spans survive the move.
        leaving.trace.merge(std::move(slot.trace));
        eventTable_.peekMutable(job.slotIndex).clear();
        cam_.erase(slot.flow);
        slot = Slot{};
        --pendingEvictions_;
        ++evictions_;
        sim::fr::record(sim::fr::Kind::fpcEvict, now(), frModule_,
                        job.flow, job.slotIndex);
        F4T_TRACE_CD(Fpc, clock(), "%s: evict flow %u toward DRAM",
                     name().c_str(), job.flow);
        if (auto *tl = sim().timeline())
            tl->instant(name(), "migration",
                        "evict flow " + std::to_string(job.flow), now());
        if (evictSink_)
            evictSink_(std::move(leaving));
    } else {
        tcbTable_.write(job.slotIndex, job.merged);
    }

    if (actionSink_ && !actions.empty())
        actionSink_(job.flow, std::move(actions));
}

} // namespace f4t::core
