#include "fpc.hh"

#include <bit>

#include "sim/causal_trace.hh"
#include "sim/flight_recorder.hh"

namespace f4t::core
{

using tcp::EventFlags;
using tcp::EventValid;

namespace
{

/** Fine-grained profiling bucket per absorbed TCP event kind. */
sim::prof::Cat
profileCategory(tcp::TcpEventType type)
{
    switch (type) {
    case tcp::TcpEventType::userSend: return sim::prof::Cat::fpcUserSend;
    case tcp::TcpEventType::userRecv: return sim::prof::Cat::fpcUserRecv;
    case tcp::TcpEventType::userConnect:
        return sim::prof::Cat::fpcUserConnect;
    case tcp::TcpEventType::userClose: return sim::prof::Cat::fpcUserClose;
    case tcp::TcpEventType::rxSegment: return sim::prof::Cat::fpcRxSegment;
    case tcp::TcpEventType::timeout: return sim::prof::Cat::fpcTimeout;
    }
    return sim::prof::Cat::fpcExec;
}

/** Flight-recorder kind per absorbed TCP event kind (same refinement
 *  the profiler uses, but always compiled in). */
sim::fr::Kind
recorderKind(tcp::TcpEventType type)
{
    switch (type) {
    case tcp::TcpEventType::userSend: return sim::fr::Kind::fpcUserSend;
    case tcp::TcpEventType::userRecv: return sim::fr::Kind::fpcUserRecv;
    case tcp::TcpEventType::userConnect:
        return sim::fr::Kind::fpcUserConnect;
    case tcp::TcpEventType::userClose: return sim::fr::Kind::fpcUserClose;
    case tcp::TcpEventType::rxSegment: return sim::fr::Kind::fpcRxSegment;
    case tcp::TcpEventType::timeout: return sim::fr::Kind::fpcTimeout;
    }
    return sim::fr::Kind::none;
}

} // namespace

Fpc::Fpc(sim::Simulation &sim, std::string name, sim::ClockDomain &domain,
         const tcp::FpuProgram &program, const FpcConfig &config)
    : ClockedObject(sim, std::move(name), domain), program_(program),
      config_(config),
      fpuLatency_(config.fpuLatencyOverride ? config.fpuLatencyOverride
                                            : program.latencyCycles()),
      occupiedBits_((config.slots + 63) / 64, 0),
      inFpuBits_((config.slots + 63) / 64, 0),
      evictBits_((config.slots + 63) / 64, 0),
      eventsValidBits_((config.slots + 63) / 64, 0),
      workPendingBits_((config.slots + 63) / 64, 0),
      lastActiveCycle_(config.slots, 0),
      slotFlow_(config.slots, tcp::invalidFlowId), slotCold_(config.slots),
      tcbTable_(config.slots), eventTable_(config.slots),
      cam_(config.slots),
      eventsHandled_(sim.stats(), statName("eventsHandled"),
                     "events absorbed by the event handler"),
      fpuPasses_(sim.stats(), statName("fpuPasses"),
                 "TCBs issued through the FPU"),
      evictions_(sim.stats(), statName("evictions"),
                 "TCBs evicted toward DRAM"),
      swapIns_(sim.stats(), statName("swapIns"), "TCBs accepted from DRAM"),
      dupAckIncrements_(sim.stats(), statName("dupAckIncrements"),
                        "single-cycle duplicate-ACK RMW operations")
{
    f4t_assert(config_.slots > 0, "FPC needs at least one slot");
    frModule_ = sim::fr::internModule(this->name());
    sim.registerAudit(this, statName("audit"),
                      [this] { auditInvariants(); });
}

Fpc::~Fpc()
{
    sim().deregisterAudits(this);
}

void
Fpc::auditInvariants() const
{
    std::size_t occupied = 0;
    std::size_t evicting = 0;
    for (std::size_t i = 0; i < config_.slots; ++i) {
        // The two derived bits are maintained mirrors of the BRAM
        // contents; recount them against the tables. The event-record
        // mirror holds for every slot (release paths clear the table);
        // the TCB table is left stale on release, so its mirror is
        // only meaningful — and only read — while the slot is occupied.
        F4T_CHECK(testBit(eventsValidBits_, i) ==
                      (eventTable_.peek(i).validMask != 0),
                  "%s: slot %zu event-valid mirror diverged from the "
                  "event table", name().c_str(), i);
        if (!testBit(occupiedBits_, i)) {
            F4T_CHECK(!testBit(inFpuBits_, i) && !testBit(evictBits_, i) &&
                          !testBit(workPendingBits_, i),
                      "%s: empty slot %zu carries live flags",
                      name().c_str(), i);
            F4T_CHECK(slotFlow_[i] == tcp::invalidFlowId,
                      "%s: empty slot %zu still names flow %u",
                      name().c_str(), i, slotFlow_[i]);
            continue;
        }
        ++occupied;
        evicting += testBit(evictBits_, i) ? 1 : 0;
        F4T_CHECK(slotFlow_[i] != tcp::invalidFlowId,
                  "%s: occupied slot %zu without a flow", name().c_str(),
                  i);
        F4T_CHECK(cam_.contains(slotFlow_[i]) &&
                      cam_.lookup(slotFlow_[i]) == i,
                  "%s: slot %zu holds flow %u but the CAM disagrees",
                  name().c_str(), i, slotFlow_[i]);
        F4T_CHECK(testBit(workPendingBits_, i) ==
                      tcbTable_.peek(i).workPending,
                  "%s: slot %zu work-pending mirror diverged from the "
                  "TCB table", name().c_str(), i);
    }
    F4T_CHECK(occupied == cam_.occupancy(),
              "%s: %zu occupied slots vs CAM occupancy %zu",
              name().c_str(), occupied, cam_.occupancy());
    F4T_CHECK(evicting == pendingEvictions_,
              "%s: %zu evict-flagged slots vs maintained counter %zu",
              name().c_str(), evicting, pendingEvictions_);

    for (std::size_t i = 0; i < fpuPipe_.size(); ++i) {
        const FpuJob &job = fpuPipe_.at(i);
        F4T_CHECK(testBit(occupiedBits_, job.slotIndex) &&
                      testBit(inFpuBits_, job.slotIndex) &&
                      slotFlow_[job.slotIndex] == job.flow,
                  "%s: FPU job for flow %u references slot %zu "
                  "(occupied=%d inFpu=%d flow=%u)", name().c_str(),
                  job.flow, job.slotIndex,
                  testBit(occupiedBits_, job.slotIndex) ? 1 : 0,
                  testBit(inFpuBits_, job.slotIndex) ? 1 : 0,
                  slotFlow_[job.slotIndex]);
    }

    for (std::size_t i = 0; i < inputFifo_.size(); ++i) {
        F4T_CHECK(cam_.contains(inputFifo_.at(i).flow),
                  "%s: queued event for non-resident flow %u",
                  name().c_str(), inputFifo_.at(i).flow);
    }
}

void
Fpc::enqueueEvent(const tcp::TcpEvent &event)
{
    f4t_assert(canAcceptEvent(), "%s: event enqueued past backpressure",
               name().c_str());
    f4t_assert(cam_.contains(event.flow),
               "%s: event for non-resident flow %u", name().c_str(),
               event.flow);
    inputFifo_.push_back(event);
    activate();
}

bool
Fpc::canAcceptTcb() const
{
    if (cam_.full())
        return false;
    // Dedicated write port: one swap-in per two-cycle window.
    return !installUsedThisWindow_ ||
           curCycle() >= lastInstallCycle_ + 2;
}

void
Fpc::installTcb(const MigratingTcb &incoming)
{
    f4t_assert(canAcceptTcb(), "%s: swap-in past backpressure",
               name().c_str());
    std::size_t slot_index = cam_.insert(incoming.tcb.flowId);
    assignBit(occupiedBits_, slot_index, true);
    assignBit(inFpuBits_, slot_index, false);
    assignBit(evictBits_, slot_index, false);
    assignBit(eventsValidBits_, slot_index, incoming.events.validMask != 0);
    assignBit(workPendingBits_, slot_index, incoming.tcb.workPending);
    slotFlow_[slot_index] = incoming.tcb.flowId;
    lastActiveCycle_[slot_index] = curCycle();
    // Tokens that travelled with the migrating TCB resume here.
    SlotCold &cold = slotCold_[slot_index];
    cold.trace.clear();
    cold.trace.mergeCopy(incoming.trace);
    tcbTable_.peekMutable(slot_index) = incoming.tcb;
    eventTable_.peekMutable(slot_index) = incoming.events;
    lastInstallCycle_ = curCycle();
    installUsedThisWindow_ = true;
    ++swapIns_;
    sim::fr::record(sim::fr::Kind::fpcInstall, now(), frModule_,
                    incoming.tcb.flowId, slot_index);
    F4T_TRACE_CD(Fpc, clock(), "%s: swap-in flow %u -> slot %zu",
                 name().c_str(), incoming.tcb.flowId, slot_index);
    if (auto *tl = sim().timeline())
        tl->instant(name(), "migration",
                    "swap-in flow " + std::to_string(incoming.tcb.flowId),
                    now());
    activate();
}

void
Fpc::requestEvict(tcp::FlowId flow)
{
    std::size_t slot_index = cam_.lookup(flow);
    if (!testBit(evictBits_, slot_index)) {
        assignBit(evictBits_, slot_index, true);
        ++pendingEvictions_;
    }
    activate();
}

std::optional<tcp::FlowId>
Fpc::coldestFlow() const
{
    std::optional<tcp::FlowId> coldest;
    std::uint64_t best = ~std::uint64_t{0};
    for (std::size_t w = 0; w < occupiedBits_.size(); ++w) {
        std::uint64_t cand = occupiedBits_[w] & ~inFpuBits_[w] &
                             ~evictBits_[w];
        while (cand != 0) {
            std::size_t i =
                (w << 6) + static_cast<std::size_t>(std::countr_zero(cand));
            cand &= cand - 1;
            if (lastActiveCycle_[i] < best) {
                best = lastActiveCycle_[i];
                coldest = slotFlow_[i];
            }
        }
    }
    return coldest;
}

void
Fpc::releaseFlow(tcp::FlowId flow)
{
    std::size_t slot_index = cam_.lookup(flow);
    f4t_assert(!testBit(inFpuBits_, slot_index),
               "%s: releasing flow %u while in the FPU", name().c_str(),
               flow);
    if (testBit(evictBits_, slot_index))
        --pendingEvictions_;
    recycleSlot(slot_index);
    eventTable_.peekMutable(slot_index).clear();
    cam_.erase(flow);
}

tcp::Tcb
Fpc::peekMergedTcb(tcp::FlowId flow) const
{
    std::size_t slot_index = cam_.lookup(flow);
    return tcp::merge(tcbTable_.peek(slot_index),
                      eventTable_.peek(slot_index));
}

bool
Fpc::slotEligible(std::size_t index) const
{
    // Pure bit tests: eventsValidBits_/workPendingBits_ mirror the
    // tables (`validMask != 0` / `workPending`), maintained at every
    // table write site. The audit recounts the mirrors.
    return testBit(occupiedBits_, index) && !testBit(inFpuBits_, index) &&
           (testBit(evictBits_, index) || testBit(eventsValidBits_, index) ||
            testBit(workPendingBits_, index));
}

void
Fpc::recycleSlot(std::size_t index)
{
    assignBit(occupiedBits_, index, false);
    assignBit(inFpuBits_, index, false);
    assignBit(evictBits_, index, false);
    assignBit(eventsValidBits_, index, false);
    assignBit(workPendingBits_, index, false);
    lastActiveCycle_[index] = 0;
    slotFlow_[index] = tcp::invalidFlowId;
    slotCold_[index].trace.clear();
}

std::size_t
Fpc::firstEligibleFrom(std::size_t from) const
{
    const std::size_t words = occupiedBits_.size();
    const std::size_t w0 = from >> 6;
    std::uint64_t word =
        eligibleWord(w0) & (~std::uint64_t{0} << (from & 63));
    for (std::size_t w = w0;;) {
        if (word != 0)
            return (w << 6) +
                   static_cast<std::size_t>(std::countr_zero(word));
        if (++w == words)
            break;
        word = eligibleWord(w);
    }
    // Wrap around: the bits strictly below `from`.
    for (std::size_t w = 0; w <= w0; ++w) {
        std::uint64_t wd = eligibleWord(w);
        if (w == w0)
            wd &= (from & 63) != 0
                      ? ~std::uint64_t{0} >> (64 - (from & 63))
                      : 0;
        if (wd != 0)
            return (w << 6) +
                   static_cast<std::size_t>(std::countr_zero(wd));
    }
    return config_.slots;
}

bool
Fpc::fifoHoldsFlow(tcp::FlowId flow) const
{
    for (std::size_t i = 0; i < inputFifo_.size(); ++i) {
        if (inputFifo_.at(i).flow == flow)
            return true;
    }
    return false;
}

bool
Fpc::tick()
{
    sim::Cycles cycle = curCycle();
    tcbTable_.newCycle(cycle);
    eventTable_.newCycle(cycle);
    if (cycle >= lastInstallCycle_ + 2)
        installUsedThisWindow_ = false;

    // The round-robin scan advances one slot per dotted cycle in the
    // modeled hardware, whether or not this object ticked on that
    // cycle. Fast-forward naps (below) skip host events for cycles
    // proven idle; catch the pointer up for the dotted cycles that
    // elapsed since the last tick before this cycle's phase runs.
    if (cycle > rrSyncedCycle_) {
        std::uint64_t dotted_skipped =
            cycle / 2 - (rrSyncedCycle_ + 1) / 2;
        if (dotted_skipped != 0)
            rrIndex_ = (rrIndex_ + dotted_skipped) % config_.slots;
    }
    rrSyncedCycle_ = cycle;

    const bool even_phase = (cycle & 1) == 0;

    if (even_phase) {
        // Solid cycle: the event handler absorbs one event.
        if (!inputFifo_.empty()) {
            tcp::TcpEvent event = inputFifo_.front();
            inputFifo_.pop_front();
            handleEvent(event, cycle);
        }
    } else {
        // Dotted cycle: FPU write-back, then the TCB manager examines
        // the next round-robin slot and issues it if it has work.
        if (!fpuPipe_.empty() && fpuPipe_.front().readyCycle <= cycle) {
            // Write back straight from the pipe slot: a FpuJob carries
            // a whole TCB, not worth an extra move. Nothing reached
            // from writeback() touches fpuPipe_ (only issueSlot(),
            // called below, pushes to it).
            writeback(fpuPipe_.front(), cycle);
            fpuPipe_.pop_front();
        }

        std::size_t index = rrIndex_;
        if (++rrIndex_ == config_.slots)
            rrIndex_ = 0;
        if (slotEligible(index))
            issueSlot(index, cycle);
    }

    // Events in flight: tick every cycle, no shortcut possible.
    if (!inputFifo_.empty())
        return true;

    // Nothing left for the solid phase. The next cycle that can do
    // work is a dotted one: either the pending FPU write-back, or the
    // first dotted cycle whose round-robin examine lands on an
    // eligible slot. Every path that creates new work in between
    // (enqueueEvent, installTcb, requestEvict) calls activate(), which
    // cuts the nap short, so sleeping to that cycle is exact — the
    // skipped ticks would have examined only ineligible slots.
    sim::Cycles next_dotted = cycle | 1;
    if (next_dotted <= cycle)
        next_dotted += 2;
    sim::Cycles wake = 0;
    if (!fpuPipe_.empty()) {
        wake = fpuPipe_.front().readyCycle | 1;
        if (wake < next_dotted)
            wake = next_dotted;
    }
    std::size_t first = firstEligibleFrom(rrIndex_);
    if (first < config_.slots) {
        std::size_t k = first >= rrIndex_
                            ? first - rrIndex_
                            : first + config_.slots - rrIndex_;
        sim::Cycles examine = next_dotted + 2 * k;
        if (wake == 0 || examine < wake)
            wake = examine;
    }
    if (wake == 0)
        return false; // fully idle; activate() rearms
    if (wake == cycle + 1)
        return true;
    activateAt(wake);
    return false;
}

void
Fpc::handleEvent(const tcp::TcpEvent &event, sim::Cycles cycle)
{
    // The dual-memory port schedule (Section 4.2.3): events are only
    // absorbed on solid (even) cycles, so no two events of this FPC can
    // ever be closer than two cycles apart — the paper's stall-free
    // 1-event-per-2-cycles occupancy claim.
    F4T_CHECK((cycle & 1) == 0,
              "%s: event absorbed on a dotted cycle %llu", name().c_str(),
              static_cast<unsigned long long>(cycle));
    F4T_IF_CHECKS({
        F4T_CHECK(!anyEventHandled_ || cycle >= lastEventCycle_ + 2,
                  "%s: events absorbed %llu cycles apart (min 2)",
                  name().c_str(),
                  static_cast<unsigned long long>(cycle - lastEventCycle_));
        lastEventCycle_ = cycle;
        anyEventHandled_ = true;
    });
    // Nested under the FPC tick's module scope: self-time accounting
    // moves this event's cost out of fpc_exec into its kind bucket.
    sim::prof::Scope event_scope(profileCategory(event.type));
    ++eventsHandled_;
    sim::fr::record(recorderKind(event.type), now(), frModule_,
                    event.flow, cycle);
    F4T_TRACE_CD(Fpc, clock(), "%s: absorb %s flow=%u", name().c_str(),
                 tcp::toString(event.type), event.flow);
    // Per-event timeline instants sit on the hottest loop in the
    // simulator, so they compile out with the tracepoints.
    if constexpr (sim::trace::compiledIn) {
        if (auto *tl = sim().timeline())
            tl->instant(name(), "event",
                        std::string(tcp::toString(event.type)) + " flow " +
                            std::to_string(event.flow),
                        now());
    }
    std::size_t index = cam_.lookup(event.flow);
    lastActiveCycle_[index] = cycle;

    // The handler reads both memories every cycle for its merged view
    // (needed for single-cycle duplicate-ACK detection); the event
    // record update is the BRAM's single-cycle RMW.
    tcp::EventRecord &record = eventTable_.readModifyWrite(index);
    const tcp::Tcb &stored = tcbTable_.read(index);
    if (tcp::accumulateEvent(record, stored, event))
        ++dupAckIncrements_;
    assignBit(eventsValidBits_, index, record.validMask != 0);

    if constexpr (sim::trace::compiledIn) {
        if (event.trace.valid()) {
            slotCold_[index].trace.add(event.trace);
            if (auto *ct = sim().causalTracer())
                ct->absorbed(event.trace, now());
        }
    }
}

void
Fpc::issueSlot(std::size_t index, sim::Cycles cycle)
{
    sim::prof::Scope pass_scope(sim::prof::Cat::fpcFpuPass);
    FpuJob &job = fpuPipe_.push_default();
    // Merge straight into the pipe slot: one table read into the job
    // plus the in-place event overlay, no intermediate TCB copy.
    job.merged = tcbTable_.read(index);
    tcp::mergeInto(job.merged, eventTable_.read(index));
    // Clearing the valid bits is the event table's write this cycle.
    tcp::EventRecord cleared;
    eventTable_.peekMutable(index) = cleared;
    assignBit(eventsValidBits_, index, false);

    assignBit(inFpuBits_, index, true);
    ++fpuPasses_;
    job.readyCycle = cycle + fpuLatency_;
    job.slotIndex = index;
    job.flow = slotFlow_[index];

    if constexpr (sim::trace::compiledIn) {
        job.trace.clear(); // pipe slots are pooled; drop stale tokens
        job.trace.merge(std::move(slotCold_[index].trace));
        if (auto *ct = sim().causalTracer()) {
            sim::Tick at = now();
            job.trace.forEach(
                [&](sim::ctrace::Token t) { ct->execStarted(t, at); });
        }
    }
}

void
Fpc::writeback(FpuJob &job, sim::Cycles cycle)
{
    sim::prof::Scope pass_scope(sim::prof::Cat::fpcFpuPass);
    f4t_assert(testBit(occupiedBits_, job.slotIndex) &&
                   slotFlow_[job.slotIndex] == job.flow,
               "%s: write-back to a recycled slot", name().c_str());

    tcp::FpuActions actions;
    program_.process(job.merged, nowUs(), actions);

    F4T_TRACE_CD(Fpc, clock(), "%s: writeback flow %u slot %zu%s",
                 name().c_str(), job.flow, job.slotIndex,
                 testBit(evictBits_, job.slotIndex) ? " (evict pending)"
                                                    : "");
    if constexpr (sim::trace::compiledIn) {
        // One span per FPU pass: issue happened fpuLatency_ cycles ago.
        if (auto *tl = sim().timeline()) {
            sim::Tick start =
                clock().cyclesToTicks(job.readyCycle - fpuLatency_);
            tl->span(name(), "fpu",
                     "pass flow " + std::to_string(job.flow), start,
                     now());
        }
    }

    F4T_IF_CHECKS({
        tcp::checkTcbInvariants(job.merged, name().c_str());
        // Cumulative pointers never regress across an FPU pass once the
        // connection is synchronized (sndNxt may: go-back-N on RTO).
        const tcp::Tcb &prev = tcbTable_.peek(job.slotIndex);
        if (tcp::stateSynchronized(prev.state) &&
            tcp::stateSynchronized(job.merged.state)) {
            F4T_CHECK(net::seqGeq(job.merged.sndUna, prev.sndUna),
                      "%s: flow %u sndUna regressed %u -> %u",
                      name().c_str(), job.flow, prev.sndUna,
                      job.merged.sndUna);
            F4T_CHECK(net::seqGeq(job.merged.rcvNxt, prev.rcvNxt),
                      "%s: flow %u rcvNxt regressed %u -> %u",
                      name().c_str(), job.flow, prev.rcvNxt,
                      job.merged.rcvNxt);
            F4T_CHECK(net::seqGeq(job.merged.req, prev.req),
                      "%s: flow %u req regressed %u -> %u",
                      name().c_str(), job.flow, prev.req, job.merged.req);
            F4T_CHECK(net::seqGeq(job.merged.userRead, prev.userRead),
                      "%s: flow %u userRead regressed %u -> %u",
                      name().c_str(), job.flow, prev.userRead,
                      job.merged.userRead);
        }
    });

    assignBit(inFpuBits_, job.slotIndex, false);
    lastActiveCycle_[job.slotIndex] = cycle;

    if constexpr (sim::trace::compiledIn) {
        // The pass merged these requests' events: their fpcExec spans
        // end here, before the actions fan out to the packet generator
        // and the host interface.
        if (auto *ct = sim().causalTracer()) {
            sim::Tick at = now();
            job.trace.forEach(
                [&](sim::ctrace::Token t) { ct->processed(t, at); });
        }
        job.trace.clear();
    }

    if (actions.releaseFlow) {
        // Connection finished: recycle the slot.
        if (testBit(evictBits_, job.slotIndex))
            --pendingEvictions_;
        eventTable_.peekMutable(job.slotIndex).clear();
        cam_.erase(job.flow);
        recycleSlot(job.slotIndex);
    } else if (testBit(evictBits_, job.slotIndex) &&
               !fifoHoldsFlow(job.flow)) {
        // Evict checker: forward the processed TCB toward DRAM without
        // consuming a table write port. Events that accumulated since
        // the pass started travel with it.
        MigratingTcb leaving;
        leaving.tcb = job.merged;
        leaving.events = eventTable_.peek(job.slotIndex);
        // Tokens of events absorbed after the pass started migrate
        // with their events; their open spans survive the move.
        leaving.trace.merge(std::move(slotCold_[job.slotIndex].trace));
        eventTable_.peekMutable(job.slotIndex).clear();
        cam_.erase(job.flow);
        recycleSlot(job.slotIndex);
        --pendingEvictions_;
        ++evictions_;
        sim::fr::record(sim::fr::Kind::fpcEvict, now(), frModule_,
                        job.flow, job.slotIndex);
        F4T_TRACE_CD(Fpc, clock(), "%s: evict flow %u toward DRAM",
                     name().c_str(), job.flow);
        if (auto *tl = sim().timeline())
            tl->instant(name(), "migration",
                        "evict flow " + std::to_string(job.flow), now());
        if (evictSink_)
            evictSink_(std::move(leaving));
    } else {
        tcbTable_.write(job.slotIndex, job.merged);
        assignBit(workPendingBits_, job.slotIndex, job.merged.workPending);
    }

    if (actionSink_ && !actions.empty())
        actionSink_(job.flow, std::move(actions));
}

} // namespace f4t::core
