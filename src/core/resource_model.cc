#include "resource_model.hh"

#include <cstdio>

namespace f4t::core
{

namespace
{

/**
 * Calibration. The paper gives two anchor points for the FtEngine
 * totals (1 FPC and 8 FPCs). Solving the linear model
 *   total(n) = base + n * perFpc
 * for each resource type:
 *   LUT:  base = 15.0 %, perFpc = 1.00 %
 *   FF:   base = 10.43 %, perFpc = 0.57 %
 *   BRAM: base = 26.3 %, perFpc = 0.71 %
 * The base is then split across the fixed modules in proportions
 * consistent with their complexity (the RX parser and host interface
 * dominate logic; the memory manager's cache dominates BRAM).
 */
struct Share
{
    const char *component;
    double lutShare;  ///< share of the fixed (non-FPC) LUT budget
    double ffShare;
    double bramShare;
};

constexpr Share fixedShares[] = {
    {"Scheduler (LUT partitions, coalesce, pending)", 0.14, 0.13, 0.03},
    {"Memory manager (TCB cache + check logic)", 0.10, 0.10, 0.42},
    {"RX parser (cuckoo lookup, reassembly)", 0.22, 0.20, 0.22},
    {"Packet generator (header gen, MSS split)", 0.14, 0.15, 0.05},
    {"Host interface (queues, DMA, doorbells)", 0.17, 0.19, 0.13},
    {"Ethernet subsystem (MAC + PHY @322 MHz)", 0.12, 0.12, 0.08},
    {"Memory controller (HBM/DDR4)", 0.08, 0.08, 0.05},
    {"ARP + ICMP + glue", 0.03, 0.03, 0.02},
};

constexpr double lutBasePct = 15.0;
constexpr double lutPerFpcPct = 1.0;
constexpr double ffBasePct = 10.43;
constexpr double ffPerFpcPct = 0.57;
constexpr double bramBasePct = 26.3;
constexpr double bramPerFpcPct = 0.71;

std::uint64_t
fromPercent(double pct, std::uint64_t capacity)
{
    return static_cast<std::uint64_t>(pct / 100.0 *
                                      static_cast<double>(capacity));
}

} // namespace

ResourceModel::ResourceModel(std::size_t num_fpcs,
                             std::size_t flows_per_fpc, bool hbm)
{
    for (const Share &share : fixedShares) {
        ResourceUsage usage;
        usage.component = share.component;
        double lut_pct = lutBasePct * share.lutShare;
        double ff_pct = ffBasePct * share.ffShare;
        double bram_pct = bramBasePct * share.bramShare;
        if (std::string(share.component).find("Memory controller") !=
                std::string::npos &&
            hbm) {
            // The HBM controller is moderately larger than DDR4's.
            lut_pct *= 1.3;
            ff_pct *= 1.3;
        }
        usage.luts = fromPercent(lut_pct, U280Capacity::luts);
        usage.ffs = fromPercent(ff_pct, U280Capacity::ffs);
        usage.brams = fromPercent(bram_pct, U280Capacity::brams);
        components_.push_back(usage);
    }

    // Per-FPC cost scales with the TCB table depth relative to the
    // reference 128 flows (BRAM only; logic is depth-independent).
    double depth_scale = static_cast<double>(flows_per_fpc) / 128.0;
    for (std::size_t i = 0; i < num_fpcs; ++i) {
        ResourceUsage usage;
        usage.component = "FPC " + std::to_string(i) +
                          " (handler, dual memory, FPU, CAM)";
        usage.luts = fromPercent(lutPerFpcPct, U280Capacity::luts);
        usage.ffs = fromPercent(ffPerFpcPct, U280Capacity::ffs);
        usage.brams =
            fromPercent(bramPerFpcPct * depth_scale, U280Capacity::brams);
        components_.push_back(usage);
    }
}

ResourceUsage
ResourceModel::total() const
{
    ResourceUsage sum;
    sum.component = "FtEngine total";
    for (const ResourceUsage &usage : components_) {
        sum.luts += usage.luts;
        sum.ffs += usage.ffs;
        sum.brams += usage.brams;
    }
    return sum;
}

std::string
ResourceModel::report() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "%-48s %10s %8s %10s %8s %8s %7s\n",
                  "Component", "LUTs", "LUT%", "FFs", "FF%", "BRAM",
                  "BRAM%");
    out += line;
    auto append = [&](const ResourceUsage &usage) {
        std::snprintf(line, sizeof(line),
                      "%-48s %10llu %7.1f%% %10llu %7.1f%% %8llu %6.1f%%\n",
                      usage.component.c_str(),
                      static_cast<unsigned long long>(usage.luts),
                      usage.lutPercent(),
                      static_cast<unsigned long long>(usage.ffs),
                      usage.ffPercent(),
                      static_cast<unsigned long long>(usage.brams),
                      usage.bramPercent());
        out += line;
    };
    for (const ResourceUsage &usage : components_)
        append(usage);
    append(total());
    return out;
}

} // namespace f4t::core
