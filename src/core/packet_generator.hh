/**
 * @file
 * The packet generator (Section 4.1.2): passively builds packets when
 * the FPU requests a transfer.
 *
 * A request longer than the maximum segment size is split into MSS
 * segments. Payload is fetched from the host TCP data buffer (a PCIe
 * DMA in the real system) and appended to the generated header just
 * before the packet leaves — the generator never interprets the data.
 *
 * The module is stateless and runs in the 322 MHz domain; its
 * throughput model is one segment per cycle plus the payload fetch
 * latency, pipelined (busy-until pacing rather than per-cycle ticks).
 */

#ifndef F4T_CORE_PACKET_GENERATOR_HH
#define F4T_CORE_PACKET_GENERATOR_HH

#include <cstdint>
#include <functional>

#include "net/packet.hh"
#include "sim/simulation.hh"
#include "tcp/fpu_program.hh"

namespace f4t::core
{

/** Addressing information the generator needs per flow. */
struct FlowAddress
{
    net::FourTuple tuple;
    net::MacAddress localMac;
    net::MacAddress peerMac;
};

/** Supplies transmit payload bytes (host buffer through PCIe). */
class PayloadSource
{
  public:
    virtual ~PayloadSource() = default;

    /**
     * Fill @p out with the flow's stream bytes at wire sequence
     * @p seq. @return the tick at which the data is available.
     */
    virtual sim::Tick fetchPayload(tcp::FlowId flow, net::SeqNum seq,
                                   std::span<std::uint8_t> out) = 0;
};

class PacketGenerator : public sim::SimObject
{
  public:
    using AddressLookup = std::function<FlowAddress(tcp::FlowId)>;
    using Transmit = std::function<void(net::Packet &&)>;

    PacketGenerator(sim::Simulation &sim, std::string name,
                    sim::ClockDomain &domain, std::uint16_t mss);

    void setAddressLookup(AddressLookup fn) { lookup_ = std::move(fn); }
    void setTransmit(Transmit fn) { transmit_ = std::move(fn); }
    void setPayloadSource(PayloadSource *source) { payload_ = source; }
    /** Causal tracing: the engine pointer keying this flow namespace. */
    void setTraceDomain(const void *domain) { traceDomain_ = domain; }

    /** Data transfer request from an FPU pass; split at the MSS. */
    void requestSegments(const tcp::SegmentRequest &request);

    /** Pure control packet (SYN / ACK / FIN / RST / probe). */
    void requestControl(const tcp::ControlRequest &request);

    std::uint64_t segmentsGenerated() const { return segments_.value(); }
    std::uint64_t retransmissions() const { return retransmits_.value(); }

  private:
    /** Pipeline pacing: one segment per cycle at 322 MHz. */
    sim::Tick nextSlot();
    void emit(net::Packet &&pkt, sim::Tick when);

    sim::ClockDomain &domain_;
    std::uint16_t mss_;
    AddressLookup lookup_;
    Transmit transmit_;
    PayloadSource *payload_ = nullptr;
    const void *traceDomain_ = nullptr;
    sim::Tick busyUntil_ = 0;

    sim::Counter segments_;
    sim::Counter controls_;
    sim::Counter retransmits_;
    sim::Counter payloadBytes_;
};

} // namespace f4t::core

#endif // F4T_CORE_PACKET_GENERATOR_HH
