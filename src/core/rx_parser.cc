#include "rx_parser.hh"

namespace f4t::core
{

using net::SeqNum;
using net::TcpFlags;

RxParser::RxParser(sim::Simulation &sim, std::string name,
                   FlowLookup &flow_table, const RxParserConfig &config)
    : SimObject(sim, std::move(name)), flowTable_(flow_table),
      config_(config),
      packetsParsed_(sim.stats(), statName("packetsParsed"),
                     "TCP packets parsed"),
      packetsDropped_(sim.stats(), statName("packetsDropped"),
                      "packets dropped (no flow / chunk overflow)"),
      oooChunksMerged_(sim.stats(), statName("oooChunksMerged"),
                       "out-of-sequence chunks merged"),
      payloadBytesAccepted_(sim.stats(), statName("payloadBytesAccepted"),
                            "payload bytes DMAed to host buffers")
{}

std::uint64_t
RxParser::unwrap(const FlowState &state, SeqNum seq) const
{
    SeqNum reference = static_cast<SeqNum>(state.rcvUpToExt);
    std::int32_t delta = net::seqDiff(seq, reference);
    return state.rcvUpToExt + delta;
}

void
RxParser::processPacket(const net::Packet &pkt)
{
    const net::TcpHeader &tcp = pkt.tcp();
    net::FourTuple tuple{pkt.ip->dst, tcp.dstPort, pkt.ip->src,
                         tcp.srcPort};

    auto flow_opt = flowTable_.find(tuple);
    tcp::FlowId flow;
    if (!flow_opt) {
        // Unknown 4-tuple: only a SYN to a listening port creates a
        // flow; everything else is dropped (the engine answers RST
        // for clarity at a higher layer if configured).
        bool pure_syn = tcp.hasFlag(TcpFlags::syn) &&
                        !tcp.hasFlag(TcpFlags::ack);
        if (!pure_syn || !synHandler_) {
            ++packetsDropped_;
            F4T_TRACE(RxParser, "%s: drop packet for unknown tuple "
                      "(port %u -> %u)", name().c_str(), tcp.srcPort,
                      tcp.dstPort);
            if (auto *tl = sim().timeline())
                tl->instant(name(), "drop", "unknown tuple", now());
            return;
        }
        flow = synHandler_(tuple, pkt.eth.src);
        if (flow == tcp::invalidFlowId) {
            ++packetsDropped_;
            F4T_TRACE(RxParser, "%s: SYN rejected (no flow available)",
                      name().c_str());
            if (auto *tl = sim().timeline())
                tl->instant(name(), "drop", "SYN rejected", now());
            return;
        }
    } else {
        flow = *flow_opt;
    }

    ++packetsParsed_;
    F4T_TRACE(RxParser, "%s: parse flow=%u seq=%u ack=%u payload=%zuB",
              name().c_str(), flow, tcp.seq, tcp.ack,
              pkt.payload.size());
    FlowState &state = flowSlot(flow);

    tcp::TcpEvent event;
    event.flow = flow;
    event.type = tcp::TcpEventType::rxSegment;
    event.trace = pkt.trace;
    event.peerAck = tcp.ack;
    event.peerWnd = tcp.window;
    event.tcpFlags = tcp.flags &
                     (TcpFlags::ack | TcpFlags::rst);

    if (tcp.hasFlag(TcpFlags::syn)) {
        if (!state.synSeen) {
            state.synSeen = true;
            state.irs = tcp.seq;
            state.rcvUpToExt = 0x1'0000'0000ULL +
                               static_cast<std::uint64_t>(
                                   static_cast<SeqNum>(tcp.seq + 1));
            state.userReadExt = state.rcvUpToExt;
        }
        event.tcpFlags |= TcpFlags::syn;
        event.peerIsn = state.irs;
    }

    if (state.synSeen && !pkt.payload.empty()) {
        std::uint64_t seg_start = unwrap(state, tcp.seq);
        std::uint64_t seg_end = seg_start + pkt.payload.size();

        // Window clipping: accept [rcvUpTo, userRead + buffer).
        std::uint64_t accept_lo = seg_start > state.rcvUpToExt
                                      ? seg_start
                                      : state.rcvUpToExt;
        std::uint64_t accept_hi =
            state.userReadExt + config_.receiveBufferBytes;
        if (seg_end < accept_hi)
            accept_hi = seg_end;

        if (accept_lo < accept_hi) {
            bool new_chunk = !state.ooo.contains(accept_lo, accept_hi);
            if (new_chunk &&
                state.ooo.chunkCount() >= config_.maxOooChunks &&
                accept_lo != state.rcvUpToExt) {
                // Chunk storage exhausted: drop; retransmission heals.
                ++packetsDropped_;
                F4T_TRACE(RxParser,
                          "%s: flow %u OOO chunk storage full, dropping",
                          name().c_str(), flow);
                if (auto *tl = sim().timeline())
                    tl->instant(name(), "drop",
                                "ooo overflow flow " + std::to_string(flow),
                                now());
            } else {
                std::size_t skip =
                    static_cast<std::size_t>(accept_lo - seg_start);
                std::size_t len =
                    static_cast<std::size_t>(accept_hi - accept_lo);
                if (payloadSink_) {
                    payloadSink_->deliverPayload(
                        flow, static_cast<SeqNum>(accept_lo),
                        std::span<const std::uint8_t>(pkt.payload)
                            .subspan(skip, len));
                }
                payloadBytesAccepted_ += len;
                std::size_t before = state.ooo.chunkCount();
                state.ooo.insert(accept_lo, accept_hi);
                if (state.ooo.chunkCount() <= before)
                    ++oooChunksMerged_;

                std::uint64_t boundary =
                    state.ooo.contiguousEnd(state.rcvUpToExt);
                if (boundary > state.rcvUpToExt) {
                    state.rcvUpToExt = boundary;
                    state.ooo.eraseBelow(boundary);
                }
            }
        }
        event.dataArrived = true;
    }

    if (state.synSeen && tcp.hasFlag(TcpFlags::fin) &&
        !state.finRecorded) {
        state.finRecorded = true;
        state.finSeqExt = unwrap(state, tcp.seq) + pkt.payload.size();
    }

    // The FIN occupies one sequence number once all data before it is
    // reassembled; the flag is reported exactly once.
    if (state.finRecorded && !state.finReassembled &&
        state.rcvUpToExt == state.finSeqExt) {
        state.rcvUpToExt += 1;
        state.finReassembled = true;
        event.tcpFlags |= TcpFlags::fin;
    }

    event.rcvUpTo = static_cast<SeqNum>(state.rcvUpToExt);

    if (eventSink_)
        eventSink_(event);
}

void
RxParser::onUserRead(tcp::FlowId flow, SeqNum read_ptr)
{
    if (flow >= flows_.size() || !flows_[flow].present)
        return;
    FlowState &state = flows_[flow];
    SeqNum reference = static_cast<SeqNum>(state.userReadExt);
    std::int32_t delta = net::seqDiff(read_ptr, reference);
    if (delta > 0)
        state.userReadExt += delta;
}

void
RxParser::dropFlow(tcp::FlowId flow)
{
    if (flow < flows_.size())
        flows_[flow] = FlowState{};
}

SeqNum
RxParser::rxStart(tcp::FlowId flow) const
{
    if (flow >= flows_.size() || !flows_[flow].synSeen)
        return 0;
    return flows_[flow].irs + 1;
}

RxParser::FlowState &
RxParser::flowSlot(tcp::FlowId flow)
{
    if (flow >= flows_.size())
        flows_.resize(flow + 1);
    FlowState &state = flows_[flow];
    state.present = true;
    return state;
}

} // namespace f4t::core
