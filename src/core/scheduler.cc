#include "scheduler.hh"

#include "core/memory_manager.hh"
#include "sim/causal_trace.hh"
#include "sim/flight_recorder.hh"

#include <algorithm>

namespace f4t::core
{

Scheduler::Scheduler(sim::Simulation &sim, std::string name,
                     sim::ClockDomain &domain,
                     const SchedulerConfig &config)
    : ClockedObject(sim, std::move(name), domain), config_(config),
      lut_(config.maxFlows), fifos_(config.coalesceFifos),
      eventsRouted_(sim.stats(), statName("eventsRouted"),
                    "events delivered to FPCs or DRAM"),
      eventsCoalesced_(sim.stats(), statName("eventsCoalesced"),
                       "events merged in the coalesce FIFOs"),
      eventsPended_(sim.stats(), statName("eventsPended"),
                    "events parked while their flow was moving"),
      migrations_(sim.stats(), statName("migrations"),
                  "TCB migrations completed"),
      rebalances_(sim.stats(), statName("rebalances"),
                  "FPC-to-FPC load-balancing migrations"),
      fifoOverflows_(sim.stats(), statName("fifoOverflows"),
                     "events submitted past the coalesce window")
{
    f4t_assert(config_.coalesceFifos > 0, "need at least one FIFO");
    frModule_ = sim::fr::internModule(this->name());
    sim.registerAudit(this, statName("audit"),
                      [this] { auditInvariants(); });
}

Scheduler::~Scheduler()
{
    sim().deregisterAudits(this);
}

void
Scheduler::auditInvariants() const
{
    std::size_t fpc_flows_seen = 0;
    std::size_t dram_flows_seen = 0;
    for (tcp::FlowId flow = 0; flow < lut_.size(); ++flow) {
        const Location &loc = lut_[flow];
        if (loc.kind == Location::Kind::unallocated)
            continue;

        std::size_t fpc_holders = 0;
        for (const Fpc *fpc : fpcs_)
            fpc_holders += fpc->hasFlow(flow) ? 1 : 0;
        bool in_dram = memoryManager_ && memoryManager_->holdsFlow(flow);
        auto mv = moving_.find(flow);
        fpc_flows_seen += fpc_holders;
        dram_flows_seen += in_dram ? 1 : 0;

        switch (loc.kind) {
          case Location::Kind::fpc:
            F4T_CHECK(fpc_holders == 1 &&
                          fpcs_[loc.fpcIndex]->hasFlow(flow),
                      "%s: flow %u LUT says FPC %u but %zu FPCs hold it",
                      name().c_str(), flow, loc.fpcIndex, fpc_holders);
            F4T_CHECK(!in_dram, "%s: flow %u in FPC %u and DRAM",
                      name().c_str(), flow, loc.fpcIndex);
            F4T_CHECK(mv == moving_.end(),
                      "%s: flow %u settled in FPC %u but still has "
                      "migration state", name().c_str(), flow,
                      loc.fpcIndex);
            break;
          case Location::Kind::dram:
            F4T_CHECK(in_dram && fpc_holders == 0,
                      "%s: flow %u LUT says DRAM (in_dram=%d, "
                      "fpc_holders=%zu)", name().c_str(), flow,
                      in_dram ? 1 : 0, fpc_holders);
            F4T_CHECK(mv == moving_.end(),
                      "%s: flow %u settled in DRAM but still has "
                      "migration state", name().c_str(), flow);
            break;
          case Location::Kind::moving: {
            // Exactly one live copy: still in the source FPC (evict
            // requested, not yet left), arrived in DRAM (insert
            // completion pending), in transit between modules, or
            // inside an in-flight DRAM extract.
            std::size_t copies = fpc_holders + (in_dram ? 1 : 0);
            if (mv != moving_.end()) {
                copies += mv->second.inTransit ? 1 : 0;
                copies += mv->second.extractPending ? 1 : 0;
            }
            F4T_CHECK(copies == 1,
                      "%s: MOVING flow %u has %zu TCB copies "
                      "(fpc=%zu dram=%d transit=%d extract=%d)",
                      name().c_str(), flow, copies, fpc_holders,
                      in_dram ? 1 : 0,
                      mv != moving_.end() && mv->second.inTransit ? 1 : 0,
                      mv != moving_.end() && mv->second.extractPending
                          ? 1 : 0);
            break;
          }
          case Location::Kind::unallocated:
            break;
        }
    }

    // No module may hold a TCB the LUT forgot: every resident flow was
    // visited above, so the per-module totals must match exactly.
    std::size_t fpc_total = 0;
    for (const Fpc *fpc : fpcs_)
        fpc_total += fpc->flowCount();
    F4T_CHECK(fpc_total == fpc_flows_seen,
              "%s: FPCs hold %zu flows but the LUT accounts for %zu "
              "(orphan TCB)", name().c_str(), fpc_total, fpc_flows_seen);
    if (memoryManager_) {
        F4T_CHECK(memoryManager_->flowCount() == dram_flows_seen,
                  "%s: DRAM holds %zu flows but the LUT accounts for "
                  "%zu (orphan TCB)", name().c_str(),
                  memoryManager_->flowCount(), dram_flows_seen);
    }

    // Pended events always belong to allocated flows (the retry path
    // can terminate only if their migrations eventually settle), and
    // the per-flow pended counts must mirror the queue exactly.
    std::unordered_map<tcp::FlowId, std::uint32_t> recount;
    for (const PendingEntry &entry : pendingQueue_) {
        F4T_CHECK(lut_[entry.event.flow].kind !=
                      Location::Kind::unallocated,
                  "%s: pended event for unallocated flow %u",
                  name().c_str(), entry.event.flow);
        ++recount[entry.event.flow];
    }
    F4T_CHECK(recount.size() == pendedCount_.size(),
              "%s: pended-count map tracks %zu flows but the queue "
              "holds %zu", name().c_str(), pendedCount_.size(),
              recount.size());
    for (const auto &[flow, n] : recount) {
        auto it = pendedCount_.find(flow);
        F4T_CHECK(it != pendedCount_.end() && it->second == n,
                  "%s: flow %u has %u pended events but the count map "
                  "says %u", name().c_str(), flow, n,
                  it != pendedCount_.end() ? it->second : 0);
    }

    // The retry queue is sorted by retry cycle (the early-exit scan in
    // tick() and the O(1) nap computation both rely on it).
    for (std::size_t i = 1; i < pendingQueue_.size(); ++i) {
        F4T_CHECK(pendingQueue_[i - 1].retryCycle <=
                      pendingQueue_[i].retryCycle,
                  "%s: pending queue out of order at %zu (%llu > %llu)",
                  name().c_str(), i,
                  static_cast<unsigned long long>(
                      pendingQueue_[i - 1].retryCycle),
                  static_cast<unsigned long long>(
                      pendingQueue_[i].retryCycle));
    }

    // Every install-queued flow is MOVING with a TCB in transit bound
    // for that queue's FPC, and the total matches the running count.
    std::size_t installs = 0;
    for (std::size_t f = 0; f < installQueues_.size(); ++f) {
        for (tcp::FlowId flow : installQueues_[f]) {
            auto mv = moving_.find(flow);
            F4T_CHECK(mv != moving_.end() && mv->second.inTransit &&
                          mv->second.destFpc == f,
                      "%s: install queue %zu holds flow %u without a "
                      "matching in-transit TCB", name().c_str(), f, flow);
            ++installs;
        }
    }
    F4T_CHECK(installs == installsQueued_,
              "%s: %zu install-queued flows vs running count %zu",
              name().c_str(), installs, installsQueued_);
}

void
Scheduler::attachFpcs(std::vector<Fpc *> fpcs)
{
    fpcs_ = std::move(fpcs);
    f4t_assert(!fpcs_.empty(), "%s: no FPCs attached", name().c_str());
    f4t_assert(fpcs_.size() <= 255, "location LUT encodes FPC index in "
               "8 bits");
    installQueues_.resize(fpcs_.size());
    for (Fpc *fpc : fpcs_) {
        fpc->setEvictSink(
            [this](MigratingTcb &&leaving) { onEvicted(std::move(leaving)); });
    }
}

void
Scheduler::attachMemoryManager(MemoryManager *manager)
{
    memoryManager_ = manager;
}

Location &
Scheduler::lut(tcp::FlowId flow)
{
    f4t_assert(flow < lut_.size(), "flow %u beyond the location LUT", flow);
    return lut_[flow];
}

const Location &
Scheduler::lut(tcp::FlowId flow) const
{
    f4t_assert(flow < lut_.size(), "flow %u beyond the location LUT", flow);
    return lut_[flow];
}

Location
Scheduler::location(tcp::FlowId flow) const
{
    return lut(flow);
}

std::optional<std::size_t>
Scheduler::leastLoadedFpc(bool require_space) const
{
    std::optional<std::size_t> best;
    std::size_t best_count = ~std::size_t{0};
    for (std::size_t i = 0; i < fpcs_.size(); ++i) {
        if (require_space && fpcs_[i]->full())
            continue;
        std::size_t count = fpcs_[i]->flowCount();
        if (count < best_count) {
            best_count = count;
            best = i;
        }
    }
    return best;
}

void
Scheduler::allocateFlow(const MigratingTcb &initial)
{
    tcp::FlowId flow = initial.tcb.flowId;
    Location &loc = lut(flow);
    f4t_assert(loc.kind == Location::Kind::unallocated,
               "flow %u allocated twice", flow);

    auto target = leastLoadedFpc(/*require_space=*/true);
    if (target && fpcs_[*target]->canAcceptTcb()) {
        fpcs_[*target]->installTcb(initial);
        loc = Location{Location::Kind::fpc,
                       static_cast<std::uint8_t>(*target)};
        return;
    }

    // All FPCs full (or the swap-in port busy): the flow starts in DRAM;
    // the memory manager's check logic will swap it in when it has work.
    f4t_assert(memoryManager_ != nullptr,
               "%s: FPCs full and no DRAM attached", name().c_str());
    F4T_TRACE(Scheduler, "%s: allocate flow %u to DRAM (FPCs full)",
              name().c_str(), flow);
    loc = Location{Location::Kind::moving, 0};
    MigratingTcb copy = initial;
    sim::Tick started = now();
    memoryManager_->insertFlow(std::move(copy), [this, flow, started] {
        lut(flow) = Location{Location::Kind::dram, 0};
        ++migrations_;
        noteMigrationDone(flow, "alloc->dram", started);
        // Work may have accumulated while the LUT said MOVING.
        memoryManager_->recheckFlow(flow);
    });
}

void
Scheduler::freeFlow(tcp::FlowId flow)
{
    Location &loc = lut(flow);
    switch (loc.kind) {
      case Location::Kind::fpc:
        // The FPC slot was already recycled by the FPU's releaseFlow.
        break;
      case Location::Kind::dram:
        memoryManager_->dropFlow(flow);
        break;
      case Location::Kind::moving:
      case Location::Kind::unallocated:
        break;
    }
    moving_.erase(flow);
    loc = Location{};
}

void
Scheduler::submitEvent(const tcp::TcpEvent &event)
{
    f4t_assert(event.flow != tcp::invalidFlowId, "event without a flow");

    std::deque<tcp::TcpEvent> &fifo =
        fifos_[event.flow % fifos_.size()];

    // Coalescing pass (Section 4.4.1): merge with an in-FIFO event of
    // the same flow when no information is lost. Only the coalesce
    // window (the FIFO's nominal depth) is searched, as in hardware.
    std::size_t window =
        config_.coalescingEnabled
            ? (fifo.size() < config_.coalesceDepth ? fifo.size()
                                                   : config_.coalesceDepth)
            : 0;
    for (std::size_t i = fifo.size() - window; i < fifo.size(); ++i) {
        if (fifo[i].flow != event.flow)
            continue;
        if (tcp::TcpEvent::canCoalesce(fifo[i], event)) {
            if constexpr (sim::trace::compiledIn) {
                // Both events carried a token: only the survivor's
                // rides on; the merged request's later stages are
                // observed through cumulative-offset coverage.
                if (event.trace.valid() &&
                    event.trace.idOr0() != fifo[i].trace.idOr0() &&
                    fifo[i].trace.valid()) {
                    if (auto *ct = sim().causalTracer())
                        ct->coalescedInto(event.trace, now());
                }
            }
            tcp::TcpEvent::coalesce(fifo[i], event);
            ++eventsCoalesced_;
            activate();
            return;
        }
        break; // same flow but not mergeable: keep ordering
    }

    if (fifo.size() >= config_.coalesceDepth)
        ++fifoOverflows_; // upstream buffering modelled as elastic
    fifo.push_back(event);
    activate();
}

bool
Scheduler::routeEvent(const tcp::TcpEvent &event)
{
    Location &loc = lut(event.flow);
    switch (loc.kind) {
      case Location::Kind::fpc: {
        Fpc *fpc = fpcs_[loc.fpcIndex];
        if (!fpc->canAcceptEvent()) {
            // Congestion: consider migrating this flow to the idlest
            // FPC (Section 4.4.2) and retry the event later.
            if (fpc->inputBacklog() >= config_.congestionThreshold &&
                !moving_.count(event.flow) && fpcs_.size() > 1) {
                // The idlest FPC by *input backlog* (the congestion
                // signal), not by flow count.
                std::optional<std::size_t> idlest;
                std::size_t best = ~std::size_t{0};
                for (std::size_t i = 0; i < fpcs_.size(); ++i) {
                    if (fpcs_[i] == fpc || fpcs_[i]->full())
                        continue;
                    if (fpcs_[i]->inputBacklog() < best) {
                        best = fpcs_[i]->inputBacklog();
                        idlest = i;
                    }
                }
                if (idlest && best + 2 < fpc->inputBacklog()) {
                    ++rebalances_;
                    F4T_TRACE(Scheduler,
                              "%s: congestion rebalance flow %u "
                              "fpc%u (backlog %zu) -> fpc%zu (%zu)",
                              name().c_str(), event.flow, loc.fpcIndex,
                              fpc->inputBacklog(), *idlest, best);
                    startEviction(event.flow, /*to_dram=*/false,
                                  static_cast<std::uint8_t>(*idlest));
                }
            }
            return false;
        }
        fpc->enqueueEvent(event);
        ++eventsRouted_;
        return true;
      }
      case Location::Kind::dram:
        if (!memoryManager_->canAcceptEvent())
            return false;
        memoryManager_->enqueueEvent(event);
        ++eventsRouted_;
        return true;
      case Location::Kind::moving:
        return false;
      case Location::Kind::unallocated:
        f4t_panic("%s: event for unallocated flow %u", name().c_str(),
                  event.flow);
    }
    return false;
}

void
Scheduler::startEviction(tcp::FlowId flow, bool to_dram,
                         std::uint8_t dest_fpc)
{
    Location &loc = lut(flow);
    f4t_assert(loc.kind == Location::Kind::fpc,
               "evicting flow %u that is not in an FPC", flow);
    Fpc *source = fpcs_[loc.fpcIndex];

    MoveState state;
    state.toDram = to_dram;
    state.destFpc = dest_fpc;
    state.startedAt = now();
    F4T_TRACE(Scheduler, "%s: start eviction of flow %u from fpc%u -> %s",
              name().c_str(), flow, loc.fpcIndex,
              to_dram ? "dram" : "fpc");
    moving_.emplace(flow, state);
    sim::fr::record(sim::fr::Kind::schedEvict, now(), frModule_, flow,
                    loc.fpcIndex, to_dram ? 1 : 0);
    loc = Location{Location::Kind::moving, 0};
    source->requestEvict(flow);
}

void
Scheduler::onEvicted(MigratingTcb &&leaving)
{
    tcp::FlowId flow = leaving.tcb.flowId;
    auto it = moving_.find(flow);
    f4t_assert(it != moving_.end(),
               "FPC evicted flow %u without a scheduler request", flow);

    if (it->second.toDram) {
        sim::Tick started = it->second.startedAt;
        memoryManager_->insertFlow(
            std::move(leaving), [this, flow, started] {
            // Evict-complete signal: the LUT points at DRAM now.
            moving_.erase(flow);
            lut(flow) = Location{Location::Kind::dram, 0};
            ++migrations_;
            noteMigrationDone(flow, "fpc->dram", started);
            memoryManager_->recheckFlow(flow);
            activate();
        });
    } else {
        it->second.inTransit = std::move(leaving);
        installQueues_[it->second.destFpc].push_back(flow);
        ++installsQueued_;
        activate();
    }
}

bool
Scheduler::requestSwapIn(tcp::FlowId flow)
{
    Location &loc = lut(flow);
    if (loc.kind != Location::Kind::dram)
        return false; // mid-migration; the caller retries later
    f4t_assert(memoryManager_ != nullptr, "swap-in without DRAM");

    auto target = leastLoadedFpc(/*require_space=*/true);
    std::uint8_t dest;
    if (target) {
        dest = static_cast<std::uint8_t>(*target);
    } else {
        // Every FPC is full: make room in the least-loaded one by
        // evicting its coldest flow to DRAM first.
        auto any = leastLoadedFpc(/*require_space=*/false);
        f4t_assert(any.has_value(), "no FPCs attached");
        dest = static_cast<std::uint8_t>(*any);
        makeRoom(*any);
    }

    MoveState state;
    state.toDram = false;
    state.destFpc = dest;
    state.extractPending = true;
    state.startedAt = now();
    F4T_TRACE(Scheduler, "%s: swap-in flow %u from DRAM -> fpc%u",
              name().c_str(), flow, dest);
    moving_.emplace(flow, state);
    loc = Location{Location::Kind::moving, 0};

    memoryManager_->extractFlow(flow, [this, flow](MigratingTcb &&tcb) {
        onExtracted(std::move(tcb));
    });
    return true;
}

void
Scheduler::makeRoom(std::size_t fpc_index)
{
    Fpc *fpc = fpcs_[fpc_index];
    if (fpc->pendingEvictions() > 0)
        return; // room is already being made
    auto victim = fpc->coldestFlow();
    if (!victim)
        return; // every slot is already evicting or in the FPU
    if (moving_.count(*victim))
        return;
    startEviction(*victim, /*to_dram=*/true, 0);
}

void
Scheduler::noteMigrationDone(tcp::FlowId flow, const char *kind,
                             sim::Tick started_at)
{
    sim::fr::record(sim::fr::Kind::schedMigrate, now(), frModule_, flow,
                    now() - started_at);
    F4T_TRACE(Scheduler, "%s: migration %s of flow %u complete (%llu ns)",
              name().c_str(), kind, flow,
              static_cast<unsigned long long>((now() - started_at) /
                                              sim::nanosecondsToTicks(1)));
    if (auto *tl = sim().timeline())
        tl->span(name(), "migration",
                 std::string("migrate ") + kind + " flow " +
                     std::to_string(flow),
                 started_at, now());
}

void
Scheduler::onExtracted(MigratingTcb &&incoming)
{
    tcp::FlowId flow = incoming.tcb.flowId;
    auto it = moving_.find(flow);
    f4t_assert(it != moving_.end(), "extract completion for flow %u "
               "that is not moving", flow);
    it->second.extractPending = false;
    it->second.inTransit = std::move(incoming);
    installQueues_[it->second.destFpc].push_back(flow);
    ++installsQueued_;
    activate();
}

void
Scheduler::progressInstalls()
{
    // Only the head of each destination's queue can move (the swap-in
    // port takes one TCB per two cycles), so look no deeper than that.
    for (std::size_t f = 0; f < installQueues_.size(); ++f) {
        std::deque<tcp::FlowId> &ready = installQueues_[f];
        if (ready.empty())
            continue;
        tcp::FlowId flow = ready.front();
        auto it = moving_.find(flow);
        f4t_assert(it != moving_.end() && it->second.inTransit,
                   "install-ready flow %u has no TCB in transit", flow);
        f4t_assert(it->second.destFpc == f,
                   "install queue %zu holds flow %u bound for fpc%u",
                   f, flow, it->second.destFpc);
        Fpc *dest = fpcs_[f];

        if (dest->full()) {
            makeRoom(f);
            continue;
        }
        if (!dest->canAcceptTcb())
            continue;
        dest->installTcb(*it->second.inTransit);
        lut(flow) = Location{Location::Kind::fpc, it->second.destFpc};
        sim::Tick started = it->second.startedAt;
        moving_.erase(it);
        ++migrations_;
        noteMigrationDone(flow, "->fpc", started);
        ready.pop_front();
        --installsQueued_;
    }
}

bool
Scheduler::tick()
{
    // Between ticks every migration is in a steady, auditable state;
    // mid-tick the LUT and module contents are transiently out of sync.
    sim().maybeAudit();

    sim::Cycles cycle = curCycle();

    // Finish migrations whose TCB is waiting for the swap-in port.
    if (installsQueued_ > 0)
        progressInstalls();

    // Retry pended events whose wait elapsed (12-cycle retry). Every
    // append carries cycle + retryCycles with a nondecreasing cycle,
    // so the queue is sorted by retry cycle: only the matured prefix
    // needs visiting, and a failed retry re-appends at the back with
    // a retry cycle no smaller than anything still queued.
    std::size_t matured = 0;
    for (const PendingEntry &pe : pendingQueue_) {
        if (pe.retryCycle > cycle)
            break;
        ++matured;
    }
    for (std::size_t i = 0; i < matured; ++i) {
        PendingEntry entry = std::move(pendingQueue_.front());
        pendingQueue_.pop_front();
        if (!routeEvent(entry.event)) {
            entry.retryCycle = cycle + config_.pendingRetryCycles;
            pendingQueue_.push_back(std::move(entry));
        } else {
            auto it = pendedCount_.find(entry.event.flow);
            if (it != pendedCount_.end() && --it->second == 0)
                pendedCount_.erase(it);
        }
    }

    // Route up to one event per LUT partition per cycle: the paper's
    // provisioning is one route per two FPCs per cycle (each FPC
    // absorbs an event every other cycle).
    std::size_t budget = fpcs_.size() > 1 ? (fpcs_.size() + 1) / 2 : 1;
    for (std::size_t n = 0; n < budget; ++n) {
        // Round-robin over the coalesce FIFOs.
        bool routed = false;
        for (std::size_t k = 0; k < fifos_.size(); ++k) {
            std::size_t f = (nextFifo_ + k) % fifos_.size();
            if (fifos_[f].empty())
                continue;
            const tcp::TcpEvent &event = fifos_[f].front();
            Location::Kind kind = lut(event.flow).kind;
            // Events of a flow with older pended events must queue
            // behind them to preserve per-flow ordering.
            bool behind_pended = pendedCount_.count(event.flow) != 0;
            if (kind == Location::Kind::moving || behind_pended) {
                ++eventsPended_;
                ++pendedCount_[event.flow];
                pendingQueue_.push_back(PendingEntry{
                    event, cycle + config_.pendingRetryCycles});
                fifos_[f].pop_front();
                routed = true;
            } else if (routeEvent(event)) {
                fifos_[f].pop_front();
                routed = true;
            } else {
                continue; // backpressured; try another FIFO
            }
            nextFifo_ = (f + 1) % fifos_.size();
            break;
        }
        if (!routed)
            break;
    }

    bool fifos_busy = installsQueued_ > 0;
    for (const auto &fifo : fifos_)
        fifos_busy = fifos_busy || !fifo.empty();
    if (fifos_busy)
        return true;

    // Only pended events remain and none matures before its 12-cycle
    // retry point: nap until the earliest one instead of ticking every
    // cycle. submitEvent()'s activate() cuts the nap short when new
    // traffic arrives.
    if (!pendingQueue_.empty()) {
        // Sorted queue: the front entry matures first.
        sim::Cycles earliest = pendingQueue_.front().retryCycle;
        if (earliest <= cycle + 1)
            return true;
        activateAt(earliest);
    }
    return false;
}

} // namespace f4t::core
