#include "scheduler.hh"

#include "core/memory_manager.hh"
#include "sim/causal_trace.hh"
#include "sim/flight_recorder.hh"

#include <algorithm>
#include <limits>

namespace f4t::core
{

Scheduler::Scheduler(sim::Simulation &sim, std::string name,
                     sim::ClockDomain &domain,
                     const SchedulerConfig &config)
    : ClockedObject(sim, std::move(name), domain), config_(config),
      lut_(config.maxFlows), fifos_(config.coalesceFifos),
      pendingRing_(config.pendingRetryCycles + 1),
      pendedCount_(config.maxFlows, 0),
      moveIdx_(config.maxFlows, -1), parkedIdx_(config.maxFlows, -1),
      eventsRouted_(sim.stats(), statName("eventsRouted"),
                    "events delivered to FPCs or DRAM"),
      eventsCoalesced_(sim.stats(), statName("eventsCoalesced"),
                       "events merged in the coalesce FIFOs"),
      eventsPended_(sim.stats(), statName("eventsPended"),
                    "events parked while their flow was moving"),
      eventsParked_(sim.stats(), statName("eventsParked"),
                    "pended events held off-calendar during migration"),
      retryAttempts_(sim.stats(), statName("retryAttempts"),
                     "pending-queue route attempts actually executed"),
      migrations_(sim.stats(), statName("migrations"),
                  "TCB migrations completed"),
      rebalances_(sim.stats(), statName("rebalances"),
                  "FPC-to-FPC load-balancing migrations"),
      fifoOverflows_(sim.stats(), statName("fifoOverflows"),
                     "events submitted past the coalesce window")
{
    f4t_assert(config_.coalesceFifos > 0, "need at least one FIFO");
    f4t_assert(config_.pendingRetryCycles > 0,
               "pending retries need a nonzero backoff");
    f4t_assert(config_.maxFlows <=
                   static_cast<std::size_t>(
                       std::numeric_limits<std::int32_t>::max()),
               "flow ids must fit the dense SoA indices");
    frModule_ = sim::fr::internModule(this->name());
    sim.registerAudit(this, statName("audit"),
                      [this] { auditInvariants(); });
}

Scheduler::~Scheduler()
{
    sim().deregisterAudits(this);
}

void
Scheduler::auditInvariants() const
{
    std::size_t fpc_flows_seen = 0;
    std::size_t dram_flows_seen = 0;
    for (tcp::FlowId flow = 0; flow < lut_.size(); ++flow) {
        const Location &loc = lut_[flow];
        if (loc.kind == Location::Kind::unallocated)
            continue;

        std::size_t fpc_holders = 0;
        for (const Fpc *fpc : fpcs_)
            fpc_holders += fpc->hasFlow(flow) ? 1 : 0;
        bool in_dram = memoryManager_ && memoryManager_->holdsFlow(flow);
        const MoveState *mv = movingState(flow);
        fpc_flows_seen += fpc_holders;
        dram_flows_seen += in_dram ? 1 : 0;

        switch (loc.kind) {
          case Location::Kind::fpc:
            F4T_CHECK(fpc_holders == 1 &&
                          fpcs_[loc.fpcIndex]->hasFlow(flow),
                      "%s: flow %u LUT says FPC %u but %zu FPCs hold it",
                      name().c_str(), flow, loc.fpcIndex, fpc_holders);
            F4T_CHECK(!in_dram, "%s: flow %u in FPC %u and DRAM",
                      name().c_str(), flow, loc.fpcIndex);
            F4T_CHECK(mv == nullptr,
                      "%s: flow %u settled in FPC %u but still has "
                      "migration state", name().c_str(), flow,
                      loc.fpcIndex);
            break;
          case Location::Kind::dram:
            F4T_CHECK(in_dram && fpc_holders == 0,
                      "%s: flow %u LUT says DRAM (in_dram=%d, "
                      "fpc_holders=%zu)", name().c_str(), flow,
                      in_dram ? 1 : 0, fpc_holders);
            F4T_CHECK(mv == nullptr,
                      "%s: flow %u settled in DRAM but still has "
                      "migration state", name().c_str(), flow);
            break;
          case Location::Kind::moving: {
            // Exactly one live copy: still in the source FPC (evict
            // requested, not yet left), arrived in DRAM (insert
            // completion pending), in transit between modules, or
            // inside an in-flight DRAM extract.
            std::size_t copies = fpc_holders + (in_dram ? 1 : 0);
            if (mv) {
                copies += mv->inTransit ? 1 : 0;
                copies += mv->extractPending ? 1 : 0;
            }
            F4T_CHECK(copies == 1,
                      "%s: MOVING flow %u has %zu TCB copies "
                      "(fpc=%zu dram=%d transit=%d extract=%d)",
                      name().c_str(), flow, copies, fpc_holders,
                      in_dram ? 1 : 0, mv && mv->inTransit ? 1 : 0,
                      mv && mv->extractPending ? 1 : 0);
            break;
          }
          case Location::Kind::unallocated:
            break;
        }

        // Parked entries exist only while the flow is MOVING, in
        // first-pend order (settle re-injects them in that order).
        if (parkedIdx_[flow] >= 0) {
            const std::deque<PendingEntry> &parked =
                parkedPool_[parkedIdx_[flow]];
            F4T_CHECK(loc.kind == Location::Kind::moving,
                      "%s: flow %u has %zu parked events but is not "
                      "MOVING", name().c_str(), flow, parked.size());
            F4T_CHECK(!parked.empty(),
                      "%s: flow %u owns an empty parked slot",
                      name().c_str(), flow);
            for (std::size_t i = 1; i < parked.size(); ++i) {
                F4T_CHECK(parked[i - 1].pendSeq < parked[i].pendSeq,
                          "%s: flow %u parked list out of pend order "
                          "at %zu", name().c_str(), flow, i);
            }
        }
    }

    // No module may hold a TCB the LUT forgot: every resident flow was
    // visited above, so the per-module totals must match exactly.
    std::size_t fpc_total = 0;
    for (const Fpc *fpc : fpcs_)
        fpc_total += fpc->flowCount();
    F4T_CHECK(fpc_total == fpc_flows_seen,
              "%s: FPCs hold %zu flows but the LUT accounts for %zu "
              "(orphan TCB)", name().c_str(), fpc_total, fpc_flows_seen);
    if (memoryManager_) {
        F4T_CHECK(memoryManager_->flowCount() == dram_flows_seen,
                  "%s: DRAM holds %zu flows but the LUT accounts for "
                  "%zu (orphan TCB)", name().c_str(),
                  memoryManager_->flowCount(), dram_flows_seen);
    }

    // Pended events always belong to allocated flows (the retry path
    // can terminate only if their migrations eventually settle), and
    // the per-flow pended counts must mirror the calendar ring plus
    // the parked lists exactly. Each nonempty ring bucket carries a
    // single retry cycle, hashes to its own slot, and keeps first-pend
    // order (settle-time re-injection relies on all three).
    std::vector<std::uint32_t> recount(lut_.size(), 0);
    std::size_t queued = 0;
    for (std::size_t b = 0; b < pendingRing_.size(); ++b) {
        const std::deque<PendingEntry> &bucket = pendingRing_[b].entries;
        for (std::size_t i = 0; i < bucket.size(); ++i) {
            const PendingEntry &entry = bucket[i];
            F4T_CHECK(lut_[entry.event.flow].kind !=
                          Location::Kind::unallocated,
                      "%s: pended event for unallocated flow %u",
                      name().c_str(), entry.event.flow);
            F4T_CHECK(entry.retryCycle % pendingRing_.size() == b,
                      "%s: retry cycle %llu filed in bucket %zu",
                      name().c_str(),
                      static_cast<unsigned long long>(entry.retryCycle),
                      b);
            if (i > 0) {
                F4T_CHECK(bucket[i - 1].retryCycle == entry.retryCycle,
                          "%s: bucket %zu mixes retry cycles %llu/%llu",
                          name().c_str(), b,
                          static_cast<unsigned long long>(
                              bucket[i - 1].retryCycle),
                          static_cast<unsigned long long>(
                              entry.retryCycle));
                F4T_CHECK(bucket[i - 1].pendSeq < entry.pendSeq,
                          "%s: bucket %zu out of pend order at %zu",
                          name().c_str(), b, i);
            }
            ++recount[entry.event.flow];
            ++queued;
        }
    }
    F4T_CHECK(queued == pendingQueued_,
              "%s: calendar holds %zu entries vs running count %zu",
              name().c_str(), queued, pendingQueued_);
    std::size_t parked_total = 0;
    std::size_t parked_slots = 0;
    for (tcp::FlowId flow = 0; flow < lut_.size(); ++flow) {
        if (parkedIdx_[flow] < 0)
            continue;
        ++parked_slots;
        const std::deque<PendingEntry> &parked =
            parkedPool_[parkedIdx_[flow]];
        for (const PendingEntry &entry : parked) {
            F4T_CHECK(entry.event.flow == flow,
                      "%s: flow %u parked list holds an event for "
                      "flow %u", name().c_str(), flow, entry.event.flow);
            ++recount[flow];
            ++parked_total;
        }
    }
    F4T_CHECK(parked_total == pendingParked_,
              "%s: parked lists hold %zu entries vs running count %zu",
              name().c_str(), parked_total, pendingParked_);
    F4T_CHECK(parked_slots + parkedFree_.size() == parkedPool_.size(),
              "%s: parked pool leaks slots (%zu used + %zu free != "
              "%zu)", name().c_str(), parked_slots, parkedFree_.size(),
              parkedPool_.size());
    for (tcp::FlowId flow = 0; flow < lut_.size(); ++flow) {
        F4T_CHECK(recount[flow] == pendedCount_[flow],
                  "%s: flow %u has %u pended events but the count "
                  "says %u", name().c_str(), flow, recount[flow],
                  pendedCount_[flow]);
    }

    // The MoveState pool's free list and the dense index agree.
    std::size_t moving_flows = 0;
    for (tcp::FlowId flow = 0; flow < lut_.size(); ++flow)
        moving_flows += moveIdx_[flow] >= 0 ? 1 : 0;
    F4T_CHECK(moving_flows + moveFree_.size() == movePool_.size(),
              "%s: move pool leaks slots (%zu used + %zu free != %zu)",
              name().c_str(), moving_flows, moveFree_.size(),
              movePool_.size());

    // Every install-queued flow is MOVING with a TCB in transit bound
    // for that queue's FPC, and the total matches the running count.
    std::size_t installs = 0;
    for (std::size_t f = 0; f < installQueues_.size(); ++f) {
        for (tcp::FlowId flow : installQueues_[f]) {
            const MoveState *mv = movingState(flow);
            F4T_CHECK(mv && mv->inTransit && mv->destFpc == f,
                      "%s: install queue %zu holds flow %u without a "
                      "matching in-transit TCB", name().c_str(), f, flow);
            ++installs;
        }
    }
    F4T_CHECK(installs == installsQueued_,
              "%s: %zu install-queued flows vs running count %zu",
              name().c_str(), installs, installsQueued_);
}

void
Scheduler::attachFpcs(std::vector<Fpc *> fpcs)
{
    fpcs_ = std::move(fpcs);
    f4t_assert(!fpcs_.empty(), "%s: no FPCs attached", name().c_str());
    f4t_assert(fpcs_.size() <= 255, "location LUT encodes FPC index in "
               "8 bits");
    installQueues_.resize(fpcs_.size());
    for (Fpc *fpc : fpcs_) {
        fpc->setEvictSink(
            [this](MigratingTcb &&leaving) { onEvicted(std::move(leaving)); });
    }
}

void
Scheduler::attachMemoryManager(MemoryManager *manager)
{
    memoryManager_ = manager;
}

Location &
Scheduler::lut(tcp::FlowId flow)
{
    f4t_assert(flow < lut_.size(), "flow %u beyond the location LUT", flow);
    return lut_[flow];
}

const Location &
Scheduler::lut(tcp::FlowId flow) const
{
    f4t_assert(flow < lut_.size(), "flow %u beyond the location LUT", flow);
    return lut_[flow];
}

Location
Scheduler::location(tcp::FlowId flow) const
{
    return lut(flow);
}

std::optional<std::size_t>
Scheduler::leastLoadedFpc(bool require_space) const
{
    std::optional<std::size_t> best;
    std::size_t best_count = ~std::size_t{0};
    for (std::size_t i = 0; i < fpcs_.size(); ++i) {
        if (require_space && fpcs_[i]->full())
            continue;
        std::size_t count = fpcs_[i]->flowCount();
        if (count < best_count) {
            best_count = count;
            best = i;
        }
    }
    return best;
}

void
Scheduler::allocateFlow(const MigratingTcb &initial)
{
    tcp::FlowId flow = initial.tcb.flowId;
    Location &loc = lut(flow);
    f4t_assert(loc.kind == Location::Kind::unallocated,
               "flow %u allocated twice", flow);

    auto target = leastLoadedFpc(/*require_space=*/true);
    if (target && fpcs_[*target]->canAcceptTcb()) {
        fpcs_[*target]->installTcb(initial);
        loc = Location{Location::Kind::fpc,
                       static_cast<std::uint8_t>(*target)};
        return;
    }

    // All FPCs full (or the swap-in port busy): the flow starts in DRAM;
    // the memory manager's check logic will swap it in when it has work.
    f4t_assert(memoryManager_ != nullptr,
               "%s: FPCs full and no DRAM attached", name().c_str());
    F4T_TRACE(Scheduler, "%s: allocate flow %u to DRAM (FPCs full)",
              name().c_str(), flow);
    loc = Location{Location::Kind::moving, 0};
    MigratingTcb copy = initial;
    sim::Tick started = now();
    memoryManager_->insertFlow(std::move(copy), [this, flow, started] {
        lut(flow) = Location{Location::Kind::dram, 0};
        ++migrations_;
        noteMigrationDone(flow, "alloc->dram", started);
        // Work may have accumulated while the LUT said MOVING.
        settleFlow(flow, /*in_tick=*/false);
        memoryManager_->recheckFlow(flow);
    });
}

void
Scheduler::freeFlow(tcp::FlowId flow)
{
    Location &loc = lut(flow);
    switch (loc.kind) {
      case Location::Kind::fpc:
        // The FPC slot was already recycled by the FPU's releaseFlow.
        break;
      case Location::Kind::dram:
        memoryManager_->dropFlow(flow);
        break;
      case Location::Kind::moving:
      case Location::Kind::unallocated:
        break;
    }
    F4T_CHECK(parkedIdx_[flow] < 0 && pendedCount_[flow] == 0,
              "%s: freeing flow %u with %u events still pended",
              name().c_str(), flow, pendedCount_[flow]);
    stopMoving(flow);
    loc = Location{};
}

void
Scheduler::submitEvent(const tcp::TcpEvent &event)
{
    f4t_assert(event.flow != tcp::invalidFlowId, "event without a flow");

    std::deque<tcp::TcpEvent> &fifo =
        fifos_[event.flow % fifos_.size()];

    // Coalescing pass (Section 4.4.1): merge with an in-FIFO event of
    // the same flow when no information is lost. Only the coalesce
    // window (the FIFO's nominal depth) is searched, as in hardware.
    std::size_t window =
        config_.coalescingEnabled
            ? (fifo.size() < config_.coalesceDepth ? fifo.size()
                                                   : config_.coalesceDepth)
            : 0;
    for (std::size_t i = fifo.size() - window; i < fifo.size(); ++i) {
        if (fifo[i].flow != event.flow)
            continue;
        if (tcp::TcpEvent::canCoalesce(fifo[i], event)) {
            if constexpr (sim::trace::compiledIn) {
                // Both events carried a token: only the survivor's
                // rides on; the merged request's later stages are
                // observed through cumulative-offset coverage.
                if (event.trace.valid() &&
                    event.trace.idOr0() != fifo[i].trace.idOr0() &&
                    fifo[i].trace.valid()) {
                    if (auto *ct = sim().causalTracer())
                        ct->coalescedInto(event.trace, now());
                }
            }
            tcp::TcpEvent::coalesce(fifo[i], event);
            ++eventsCoalesced_;
            activate();
            return;
        }
        break; // same flow but not mergeable: keep ordering
    }

    if (fifo.size() >= config_.coalesceDepth)
        ++fifoOverflows_; // upstream buffering modelled as elastic
    fifo.push_back(event);
    activate();
}

bool
Scheduler::routeEvent(const tcp::TcpEvent &event)
{
    Location &loc = lut(event.flow);
    switch (loc.kind) {
      case Location::Kind::fpc: {
        Fpc *fpc = fpcs_[loc.fpcIndex];
        if (!fpc->canAcceptEvent()) {
            // Congestion: consider migrating this flow to the idlest
            // FPC (Section 4.4.2) and retry the event later.
            if (fpc->inputBacklog() >= config_.congestionThreshold &&
                !movingState(event.flow) && fpcs_.size() > 1) {
                // The idlest FPC by *input backlog* (the congestion
                // signal), not by flow count.
                std::optional<std::size_t> idlest;
                std::size_t best = ~std::size_t{0};
                for (std::size_t i = 0; i < fpcs_.size(); ++i) {
                    if (fpcs_[i] == fpc || fpcs_[i]->full())
                        continue;
                    if (fpcs_[i]->inputBacklog() < best) {
                        best = fpcs_[i]->inputBacklog();
                        idlest = i;
                    }
                }
                if (idlest && best + 2 < fpc->inputBacklog()) {
                    ++rebalances_;
                    F4T_TRACE(Scheduler,
                              "%s: congestion rebalance flow %u "
                              "fpc%u (backlog %zu) -> fpc%zu (%zu)",
                              name().c_str(), event.flow, loc.fpcIndex,
                              fpc->inputBacklog(), *idlest, best);
                    startEviction(event.flow, /*to_dram=*/false,
                                  static_cast<std::uint8_t>(*idlest));
                }
            }
            return false;
        }
        fpc->enqueueEvent(event);
        ++eventsRouted_;
        return true;
      }
      case Location::Kind::dram:
        if (!memoryManager_->canAcceptEvent())
            return false;
        memoryManager_->enqueueEvent(event);
        ++eventsRouted_;
        return true;
      case Location::Kind::moving:
        return false;
      case Location::Kind::unallocated:
        f4t_panic("%s: event for unallocated flow %u", name().c_str(),
                  event.flow);
    }
    return false;
}

void
Scheduler::startEviction(tcp::FlowId flow, bool to_dram,
                         std::uint8_t dest_fpc)
{
    Location &loc = lut(flow);
    f4t_assert(loc.kind == Location::Kind::fpc,
               "evicting flow %u that is not in an FPC", flow);
    Fpc *source = fpcs_[loc.fpcIndex];

    MoveState state;
    state.toDram = to_dram;
    state.destFpc = dest_fpc;
    state.startedAt = now();
    F4T_TRACE(Scheduler, "%s: start eviction of flow %u from fpc%u -> %s",
              name().c_str(), flow, loc.fpcIndex,
              to_dram ? "dram" : "fpc");
    startMoving(flow, std::move(state));
    sim::fr::record(sim::fr::Kind::schedEvict, now(), frModule_, flow,
                    loc.fpcIndex, to_dram ? 1 : 0);
    loc = Location{Location::Kind::moving, 0};
    source->requestEvict(flow);
}

void
Scheduler::onEvicted(MigratingTcb &&leaving)
{
    tcp::FlowId flow = leaving.tcb.flowId;
    MoveState *mv = movingState(flow);
    f4t_assert(mv != nullptr,
               "FPC evicted flow %u without a scheduler request", flow);

    if (mv->toDram) {
        sim::Tick started = mv->startedAt;
        memoryManager_->insertFlow(
            std::move(leaving), [this, flow, started] {
            // Evict-complete signal: the LUT points at DRAM now.
            stopMoving(flow);
            lut(flow) = Location{Location::Kind::dram, 0};
            ++migrations_;
            noteMigrationDone(flow, "fpc->dram", started);
            settleFlow(flow, /*in_tick=*/false);
            memoryManager_->recheckFlow(flow);
            activate();
        });
    } else {
        mv->inTransit = std::move(leaving);
        installQueues_[mv->destFpc].push_back(flow);
        ++installsQueued_;
        activate();
    }
}

bool
Scheduler::requestSwapIn(tcp::FlowId flow)
{
    Location &loc = lut(flow);
    if (loc.kind != Location::Kind::dram)
        return false; // mid-migration; the caller retries later
    f4t_assert(memoryManager_ != nullptr, "swap-in without DRAM");

    auto target = leastLoadedFpc(/*require_space=*/true);
    std::uint8_t dest;
    if (target) {
        dest = static_cast<std::uint8_t>(*target);
    } else {
        // Every FPC is full: make room in the least-loaded one by
        // evicting its coldest flow to DRAM first.
        auto any = leastLoadedFpc(/*require_space=*/false);
        f4t_assert(any.has_value(), "no FPCs attached");
        dest = static_cast<std::uint8_t>(*any);
        makeRoom(*any);
    }

    MoveState state;
    state.toDram = false;
    state.destFpc = dest;
    state.extractPending = true;
    state.startedAt = now();
    F4T_TRACE(Scheduler, "%s: swap-in flow %u from DRAM -> fpc%u",
              name().c_str(), flow, dest);
    startMoving(flow, std::move(state));
    loc = Location{Location::Kind::moving, 0};

    memoryManager_->extractFlow(flow, [this, flow](MigratingTcb &&tcb) {
        onExtracted(std::move(tcb));
    });
    return true;
}

void
Scheduler::makeRoom(std::size_t fpc_index)
{
    Fpc *fpc = fpcs_[fpc_index];
    if (fpc->pendingEvictions() > 0)
        return; // room is already being made
    auto victim = fpc->coldestFlow();
    if (!victim)
        return; // every slot is already evicting or in the FPU
    if (movingState(*victim))
        return;
    startEviction(*victim, /*to_dram=*/true, 0);
}

void
Scheduler::noteMigrationDone(tcp::FlowId flow, const char *kind,
                             sim::Tick started_at)
{
    sim::fr::record(sim::fr::Kind::schedMigrate, now(), frModule_, flow,
                    now() - started_at);
    F4T_TRACE(Scheduler, "%s: migration %s of flow %u complete (%llu ns)",
              name().c_str(), kind, flow,
              static_cast<unsigned long long>((now() - started_at) /
                                              sim::nanosecondsToTicks(1)));
    if (auto *tl = sim().timeline())
        tl->span(name(), "migration",
                 std::string("migrate ") + kind + " flow " +
                     std::to_string(flow),
                 started_at, now());
}

Scheduler::MoveState *
Scheduler::movingState(tcp::FlowId flow)
{
    std::int32_t idx = moveIdx_[flow];
    return idx >= 0 ? &movePool_[idx] : nullptr;
}

const Scheduler::MoveState *
Scheduler::movingState(tcp::FlowId flow) const
{
    std::int32_t idx = moveIdx_[flow];
    return idx >= 0 ? &movePool_[idx] : nullptr;
}

Scheduler::MoveState &
Scheduler::startMoving(tcp::FlowId flow, MoveState &&state)
{
    f4t_assert(moveIdx_[flow] < 0, "flow %u is already moving", flow);
    std::int32_t idx;
    if (!moveFree_.empty()) {
        idx = moveFree_.back();
        moveFree_.pop_back();
        movePool_[idx] = std::move(state);
    } else {
        idx = static_cast<std::int32_t>(movePool_.size());
        movePool_.push_back(std::move(state));
    }
    moveIdx_[flow] = idx;
    return movePool_[idx];
}

void
Scheduler::stopMoving(tcp::FlowId flow)
{
    std::int32_t idx = moveIdx_[flow];
    if (idx < 0)
        return;
    movePool_[idx] = MoveState{}; // release any in-transit TCB now
    moveFree_.push_back(idx);
    moveIdx_[flow] = -1;
}

void
Scheduler::appendPending(PendingEntry &&entry)
{
    PendingBucket &bucket =
        pendingRing_[entry.retryCycle % pendingRing_.size()];
    f4t_assert(bucket.entries.empty() ||
                   (bucket.entries.back().retryCycle ==
                        entry.retryCycle &&
                    bucket.entries.back().pendSeq < entry.pendSeq),
               "pending append out of order");
    bucket.entries.push_back(std::move(entry));
    ++pendingQueued_;
}

void
Scheduler::insertPending(PendingEntry &&entry)
{
    PendingBucket &bucket =
        pendingRing_[entry.retryCycle % pendingRing_.size()];
    f4t_assert(bucket.entries.empty() ||
                   bucket.entries.front().retryCycle == entry.retryCycle,
               "pending insert into a bucket of another cycle");
    auto pos = std::lower_bound(
        bucket.entries.begin(), bucket.entries.end(), entry.pendSeq,
        [](const PendingEntry &e, std::uint64_t seq) {
            return e.pendSeq < seq;
        });
    bucket.entries.insert(pos, std::move(entry));
    ++pendingQueued_;
}

void
Scheduler::parkEntry(PendingEntry &&entry)
{
    tcp::FlowId flow = entry.event.flow;
    std::int32_t idx = parkedIdx_[flow];
    if (idx < 0) {
        if (!parkedFree_.empty()) {
            idx = parkedFree_.back();
            parkedFree_.pop_back();
        } else {
            idx = static_cast<std::int32_t>(parkedPool_.size());
            parkedPool_.emplace_back();
        }
        parkedIdx_[flow] = idx;
    }
    std::deque<PendingEntry> &parked = parkedPool_[idx];
    // Usually an append (fresh pends carry fresh seqs), but an old
    // calendar entry parking lazily at its next poll can trail a
    // younger entry parked straight off the route path.
    auto pos = std::lower_bound(
        parked.begin(), parked.end(), entry.pendSeq,
        [](const PendingEntry &e, std::uint64_t seq) {
            return e.pendSeq < seq;
        });
    parked.insert(pos, std::move(entry));
    ++pendingParked_;
    ++eventsParked_;
}

void
Scheduler::settleFlow(tcp::FlowId flow, bool in_tick)
{
    std::int32_t idx = parkedIdx_[flow];
    if (idx < 0)
        return;
    std::deque<PendingEntry> &parked = parkedPool_[idx];

    // The polling hardware kept attempting every entry on its fixed
    // 12-cycle lattice; while the flow was MOVING each attempt was a
    // provable no-op. Re-enter the calendar at the first lattice point
    // the poller would hit now that the LUT has settled: the current
    // cycle when settling inside this tick's install phase (the retry
    // scan runs right after and must see it), the next cycle when
    // settling from a completion callback (this cycle's scan already
    // ran — ClockedObject tick events carry clockPriority).
    const sim::Cycles period = config_.pendingRetryCycles;
    const sim::Cycles horizon = curCycle() + (in_tick ? 0 : 1);
    while (!parked.empty()) {
        PendingEntry entry = std::move(parked.front());
        parked.pop_front();
        --pendingParked_;
        if (entry.retryCycle < horizon) {
            sim::Cycles missed = horizon - entry.retryCycle;
            entry.retryCycle += (missed + period - 1) / period * period;
        }
        insertPending(std::move(entry));
    }
    parkedFree_.push_back(idx);
    parkedIdx_[flow] = -1;
    if (!in_tick)
        activate(); // parked entries no longer drive the nap schedule
}

void
Scheduler::onExtracted(MigratingTcb &&incoming)
{
    tcp::FlowId flow = incoming.tcb.flowId;
    MoveState *mv = movingState(flow);
    f4t_assert(mv != nullptr, "extract completion for flow %u "
               "that is not moving", flow);
    mv->extractPending = false;
    mv->inTransit = std::move(incoming);
    installQueues_[mv->destFpc].push_back(flow);
    ++installsQueued_;
    activate();
}

void
Scheduler::progressInstalls()
{
    // Only the head of each destination's queue can move (the swap-in
    // port takes one TCB per two cycles), so look no deeper than that.
    for (std::size_t f = 0; f < installQueues_.size(); ++f) {
        std::deque<tcp::FlowId> &ready = installQueues_[f];
        if (ready.empty())
            continue;
        tcp::FlowId flow = ready.front();
        MoveState *mv = movingState(flow);
        f4t_assert(mv && mv->inTransit,
                   "install-ready flow %u has no TCB in transit", flow);
        f4t_assert(mv->destFpc == f,
                   "install queue %zu holds flow %u bound for fpc%u",
                   f, flow, mv->destFpc);
        Fpc *dest = fpcs_[f];

        if (dest->full()) {
            makeRoom(f);
            continue;
        }
        if (!dest->canAcceptTcb())
            continue;
        dest->installTcb(*mv->inTransit);
        lut(flow) = Location{Location::Kind::fpc, mv->destFpc};
        sim::Tick started = mv->startedAt;
        stopMoving(flow);
        ++migrations_;
        noteMigrationDone(flow, "->fpc", started);
        settleFlow(flow, /*in_tick=*/true);
        ready.pop_front();
        --installsQueued_;
    }
}

bool
Scheduler::tick()
{
    // Between ticks every migration is in a steady, auditable state;
    // mid-tick the LUT and module contents are transiently out of sync.
    sim().maybeAudit();

    sim::Cycles cycle = curCycle();

    // Finish migrations whose TCB is waiting for the swap-in port.
    if (installsQueued_ > 0)
        progressInstalls();

    // Retry pended events whose wait elapsed (12-cycle retry). Live
    // retry cycles span at most ring-size consecutive values, so the
    // calendar bucket for this cycle holds exactly the matured set —
    // in first-pend order — and a failed retry re-files one period
    // out (a different bucket; no entry is visited twice). A retry
    // that fails because its flow went MOVING parks instead: every
    // further poll until the migration settles is a provable no-op,
    // and settleFlow() re-files it on its unchanged retry lattice.
    PendingBucket &due = pendingRing_[cycle % pendingRing_.size()];
    if (!due.entries.empty() &&
        due.entries.front().retryCycle <= cycle) {
        std::deque<PendingEntry> matured;
        matured.swap(due.entries);
        pendingQueued_ -= matured.size();
        for (PendingEntry &entry : matured) {
            F4T_CHECK(entry.retryCycle == cycle,
                      "%s: entry matured at cycle %llu attempted at "
                      "%llu", name().c_str(),
                      static_cast<unsigned long long>(entry.retryCycle),
                      static_cast<unsigned long long>(cycle));
            ++retryAttempts_;
            if (routeEvent(entry.event)) {
                --pendedCount_[entry.event.flow];
            } else {
                entry.retryCycle = cycle + config_.pendingRetryCycles;
                if (lut_[entry.event.flow].kind ==
                        Location::Kind::moving)
                    parkEntry(std::move(entry));
                else
                    appendPending(std::move(entry));
            }
        }
    }

    // Route up to one event per LUT partition per cycle: the paper's
    // provisioning is one route per two FPCs per cycle (each FPC
    // absorbs an event every other cycle).
    std::size_t budget = fpcs_.size() > 1 ? (fpcs_.size() + 1) / 2 : 1;
    for (std::size_t n = 0; n < budget; ++n) {
        // Round-robin over the coalesce FIFOs.
        bool routed = false;
        for (std::size_t k = 0; k < fifos_.size(); ++k) {
            std::size_t f = (nextFifo_ + k) % fifos_.size();
            if (fifos_[f].empty())
                continue;
            const tcp::TcpEvent &event = fifos_[f].front();
            Location::Kind kind = lut(event.flow).kind;
            // Events of a flow with older pended events must queue
            // behind them to preserve per-flow ordering.
            bool behind_pended = pendedCount_[event.flow] != 0;
            if (kind == Location::Kind::moving || behind_pended) {
                ++eventsPended_;
                ++pendedCount_[event.flow];
                PendingEntry entry{event,
                                   cycle + config_.pendingRetryCycles,
                                   nextPendSeq_++};
                if (kind == Location::Kind::moving)
                    parkEntry(std::move(entry));
                else
                    appendPending(std::move(entry));
                fifos_[f].pop_front();
                routed = true;
            } else if (routeEvent(event)) {
                fifos_[f].pop_front();
                routed = true;
            } else {
                continue; // backpressured; try another FIFO
            }
            nextFifo_ = (f + 1) % fifos_.size();
            break;
        }
        if (!routed)
            break;
    }

    bool fifos_busy = installsQueued_ > 0;
    for (const auto &fifo : fifos_)
        fifos_busy = fifos_busy || !fifo.empty();
    if (fifos_busy)
        return true;

    // Only pended events remain and none matures before its 12-cycle
    // retry point: nap until the earliest one instead of ticking every
    // cycle. submitEvent()'s activate() cuts the nap short when new
    // traffic arrives. Parked entries never drive the nap — their
    // polls are no-ops by construction, and settleFlow() re-activates
    // when a migration completion makes them routable again.
    if (pendingQueued_ > 0) {
        sim::Cycles earliest = ~sim::Cycles{0};
        for (const PendingBucket &bucket : pendingRing_) {
            if (!bucket.entries.empty())
                earliest = std::min(earliest,
                                    bucket.entries.front().retryCycle);
        }
        if (earliest <= cycle + 1)
            return true;
        activateAt(earliest);
    }
    return false;
}

} // namespace f4t::core
