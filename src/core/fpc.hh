/**
 * @file
 * FPC: the Flow Processing Core (paper Section 4.2, Figure 4).
 *
 * Composition of the event handler, the dual memory (TCB table +
 * event table with per-field valid bits), the round-robin TCB
 * manager, the fully pipelined FPU, the evict checker, and the
 * flow-ID CAM.
 *
 * Timing model (250 MHz): the two BRAMs each expose two ports and the
 * accesses are scheduled in a two-cycle pattern exactly as in
 * Section 4.2.3:
 *
 *  - even cycle ("solid"): the TCB table accepts one swapped-in TCB;
 *    the event table stores one handled event (the event handler's
 *    single-cycle RMW for duplicate-ACK counting shares this port
 *    pair); both tables are read for the handler's merged view.
 *  - odd cycle ("dotted"): the TCB table stores one FPU write-back;
 *    the TCB manager reads both tables to construct an up-to-date TCB
 *    for the FPU and clears the flow's valid bits.
 *
 * Hence one event is absorbed and one TCB issued per two cycles:
 * 125 M events/s per FPC at 250 MHz, with no RMW stalls regardless of
 * the FPU program's latency.
 */

#ifndef F4T_CORE_FPC_HH
#define F4T_CORE_FPC_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mem/bram.hh"
#include "sim/ring_fifo.hh"
#include "sim/simulation.hh"
#include "tcp/fpu_program.hh"
#include "tcp/tcb.hh"

namespace f4t::core
{

/** A TCB in flight between an FPC and DRAM: the FPU-processed TCB
 *  plus any events accumulated after the FPU pass started. */
struct MigratingTcb
{
    tcp::Tcb tcb;
    tcp::EventRecord events;
    /** Causal-trace tokens of requests whose events travel with the
     *  TCB — spans survive a mid-request connection migration. */
    [[no_unique_address]] sim::ctrace::TokenSet trace;
};

/**
 * Content-addressable memory mapping global flow IDs to local table
 * indices (Section 4.4.2). The hardware implements it as a comparator
 * array + binary log; a lookup hits exactly one entry by construction
 * (the scheduler only routes events to the FPC holding the flow),
 * which this model asserts.
 *
 * The host-side implementation is a small open-addressing hash table
 * (linear probing, tombstone deletion) rather than std::unordered_map:
 * every handled event performs a lookup, so the table must resolve a
 * hit in one or two probes of a flat, cache-resident array.
 */
class FlowCam
{
  public:
    explicit FlowCam(std::size_t slots)
    {
        freeSlots_.reserve(slots);
        for (std::size_t i = slots; i > 0; --i)
            freeSlots_.push_back(i - 1);
        // Capacity 4x the slot count keeps the load factor under 25%,
        // so probe chains stay short even with tombstones around.
        std::size_t cap = 16;
        while (cap < slots * 4)
            cap <<= 1;
        cells_.resize(cap);
    }

    bool full() const { return freeSlots_.empty(); }
    std::size_t occupancy() const { return occupancy_; }

    std::size_t
    insert(tcp::FlowId flow)
    {
        f4t_assert(!full(), "CAM insert into full FPC");
        f4t_assert(findCell(flow) == nullptr,
                   "CAM double insert of flow %u", flow);
        std::size_t slot = freeSlots_.back();
        freeSlots_.pop_back();

        std::size_t idx = probeStart(flow);
        while (cells_[idx].state == Cell::fullState)
            idx = nextProbe(idx);
        if (cells_[idx].state == Cell::deadState)
            --tombstones_;
        cells_[idx] = Cell{flow, static_cast<std::uint32_t>(slot),
                           Cell::fullState};
        ++occupancy_;
        return slot;
    }

    void
    erase(tcp::FlowId flow)
    {
        Cell *cell = findCell(flow);
        f4t_assert(cell != nullptr, "CAM erase of absent flow %u", flow);
        freeSlots_.push_back(cell->slot);
        cell->state = Cell::deadState;
        --occupancy_;
        ++tombstones_;
        // Tombstones lengthen every future probe chain; once they
        // rival a quarter of the table, rebuild it clean.
        if (tombstones_ * 4 > cells_.size())
            rebuild();
    }

    /** The single matching entry; asserts the hit exists. */
    std::size_t
    lookup(tcp::FlowId flow) const
    {
        const Cell *cell = findCell(flow);
        f4t_assert(cell != nullptr, "CAM miss for flow %u — the "
                   "scheduler routed an event to the wrong FPC", flow);
        return cell->slot;
    }

    bool contains(tcp::FlowId flow) const { return findCell(flow) != nullptr; }

  private:
    struct Cell
    {
        static constexpr std::uint8_t emptyState = 0;
        static constexpr std::uint8_t fullState = 1;
        static constexpr std::uint8_t deadState = 2; ///< tombstone

        tcp::FlowId key = 0;
        std::uint32_t slot = 0;
        std::uint8_t state = emptyState;
    };

    std::size_t
    probeStart(tcp::FlowId flow) const
    {
        // Fibonacci hashing spreads the (often sequential) flow IDs.
        std::uint64_t h = flow * 0x9E3779B97F4A7C15ULL;
        return static_cast<std::size_t>(h >> 32) & (cells_.size() - 1);
    }

    std::size_t
    nextProbe(std::size_t idx) const
    {
        return (idx + 1) & (cells_.size() - 1);
    }

    const Cell *
    findCell(tcp::FlowId flow) const
    {
        std::size_t idx = probeStart(flow);
        while (true) {
            const Cell &cell = cells_[idx];
            if (cell.state == Cell::emptyState)
                return nullptr;
            if (cell.state == Cell::fullState && cell.key == flow)
                return &cell;
            idx = nextProbe(idx);
        }
    }

    Cell *
    findCell(tcp::FlowId flow)
    {
        return const_cast<Cell *>(
            static_cast<const FlowCam *>(this)->findCell(flow));
    }

    void
    rebuild()
    {
        std::vector<Cell> old = std::move(cells_);
        cells_.assign(old.size(), Cell{});
        tombstones_ = 0;
        for (const Cell &cell : old) {
            if (cell.state != Cell::fullState)
                continue;
            std::size_t idx = probeStart(cell.key);
            while (cells_[idx].state == Cell::fullState)
                idx = nextProbe(idx);
            cells_[idx] = cell;
        }
    }

    std::vector<Cell> cells_;
    std::size_t occupancy_ = 0;
    std::size_t tombstones_ = 0;
    std::vector<std::size_t> freeSlots_;
};

struct FpcConfig
{
    std::size_t slots = 128;
    std::size_t inputFifoDepth = 16;
    /** Override the FPU program's pipeline latency (0 = use program). */
    unsigned fpuLatencyOverride = 0;
};

class Fpc : public sim::ClockedObject
{
  public:
    /** Called at FPU write-back with the actions of the pass. */
    using ActionSink =
        std::function<void(tcp::FlowId, tcp::FpuActions &&)>;
    /** Called when an evicted TCB leaves toward DRAM / another FPC. */
    using EvictSink = std::function<void(MigratingTcb &&)>;

    Fpc(sim::Simulation &sim, std::string name, sim::ClockDomain &domain,
        const tcp::FpuProgram &program, const FpcConfig &config);
    ~Fpc() override;

    /**
     * Structural invariant audit (checked builds): slot occupancy
     * matches the CAM, every FPU-pipe job references an occupied slot
     * that is flagged inFpu, and every queued event's flow is resident.
     */
    void auditInvariants() const;

    void setActionSink(ActionSink sink) { actionSink_ = std::move(sink); }
    void setEvictSink(EvictSink sink) { evictSink_ = std::move(sink); }

    // --- scheduler-facing interface --------------------------------------
    /** Input FIFO backpressure. */
    bool canAcceptEvent() const { return inputFifo_.size() < config_.inputFifoDepth; }
    void enqueueEvent(const tcp::TcpEvent &event);
    std::size_t inputBacklog() const { return inputFifo_.size(); }

    /** Dedicated swap-in write port: one TCB per two cycles. */
    bool canAcceptTcb() const;
    void installTcb(const MigratingTcb &incoming);

    /** Mark a flow for eviction; it leaves after its next FPU pass. */
    void requestEvict(tcp::FlowId flow);

    /** The least-recently-active resident flow (eviction candidate). */
    std::optional<tcp::FlowId> coldestFlow() const;

    /** Slots currently flagged for eviction (room being made). The
     *  scheduler polls this every cycle while installs are stuck, so
     *  it is a maintained counter, not a slot scan (the audit
     *  recounts). */
    std::size_t pendingEvictions() const { return pendingEvictions_; }

    bool hasFlow(tcp::FlowId flow) const { return cam_.contains(flow); }
    std::size_t flowCount() const { return cam_.occupancy(); }
    std::size_t capacity() const { return config_.slots; }
    bool full() const { return cam_.full(); }

    /** Release a flow whose connection fully closed (FPU said so). */
    void releaseFlow(tcp::FlowId flow);

    /** Read-only view of a resident merged TCB (tests/diagnostics). */
    tcp::Tcb peekMergedTcb(tcp::FlowId flow) const;

    const tcp::FpuProgram &program() const { return program_; }
    unsigned fpuLatency() const { return fpuLatency_; }

    // --- statistics -----------------------------------------------------------
    std::uint64_t eventsHandled() const { return eventsHandled_.value(); }
    std::uint64_t fpuPasses() const { return fpuPasses_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }

  protected:
    bool tick() override;

  private:
    /**
     * Cold per-slot state. The hot slot fields live in the SoA members
     * below (DESIGN.md §17): per-slot booleans are bitmap words so the
     * eligibility scan and the nap computation touch five cache lines
     * for 128 slots instead of walking an array of structs, and the
     * two derived bits (event-record valid, TCB work pending) are
     * maintained mirrors of the BRAM contents so eligibility never
     * reads the tables at all.
     */
    struct SlotCold
    {
        /** Tokens of events absorbed but not yet issued to the FPU. */
        [[no_unique_address]] sim::ctrace::TokenSet trace;
    };

    struct FpuJob
    {
        sim::Cycles readyCycle;
        std::size_t slotIndex;
        tcp::FlowId flow;
        tcp::Tcb merged;
        /** Tokens of the events merged into this pass. */
        [[no_unique_address]] sim::ctrace::TokenSet trace;
    };

    void handleEvent(const tcp::TcpEvent &event, sim::Cycles cycle);
    bool slotEligible(std::size_t index) const;
    void recycleSlot(std::size_t index);
    void issueSlot(std::size_t index, sim::Cycles cycle);
    void writeback(FpuJob &job, sim::Cycles cycle);
    bool fifoHoldsFlow(tcp::FlowId flow) const;
    std::uint64_t nowUs() const { return now() / 1'000'000; }

    // --- SoA slot-state helpers -------------------------------------------
    static bool
    testBit(const std::vector<std::uint64_t> &bits, std::size_t i)
    {
        return (bits[i >> 6] >> (i & 63)) & 1;
    }
    static void
    assignBit(std::vector<std::uint64_t> &bits, std::size_t i, bool on)
    {
        std::uint64_t mask = std::uint64_t{1} << (i & 63);
        if (on)
            bits[i >> 6] |= mask;
        else
            bits[i >> 6] &= ~mask;
    }
    /** One word of "would issueSlot have work" bits. */
    std::uint64_t
    eligibleWord(std::size_t w) const
    {
        return occupiedBits_[w] & ~inFpuBits_[w] &
               (evictBits_[w] | eventsValidBits_[w] | workPendingBits_[w]);
    }
    /** First eligible slot at or (circularly) after @p from, else
     *  config_.slots when none is eligible. */
    std::size_t firstEligibleFrom(std::size_t from) const;

    const tcp::FpuProgram &program_;
    FpcConfig config_;
    unsigned fpuLatency_;

    sim::RingFifo<tcp::TcpEvent> inputFifo_;
    /**
     * Per-slot state, struct-of-arrays (DESIGN.md §17). The five
     * booleans the round-robin eligibility scan reads are bitmap words;
     * eventsValidBits_/workPendingBits_ are maintained mirrors of the
     * BRAM contents (every table write site updates them — the BRAM
     * model is write-first, so mirror and table never diverge within a
     * cycle; the audit recounts both against the tables).
     */
    std::vector<std::uint64_t> occupiedBits_;
    std::vector<std::uint64_t> inFpuBits_;
    std::vector<std::uint64_t> evictBits_;
    /** Mirror: eventTable_.peek(i).validMask != 0. */
    std::vector<std::uint64_t> eventsValidBits_;
    /** Mirror: tcbTable_.peek(i).workPending, occupied slots only. */
    std::vector<std::uint64_t> workPendingBits_;
    std::vector<std::uint64_t> lastActiveCycle_;
    std::vector<tcp::FlowId> slotFlow_;
    std::vector<SlotCold> slotCold_;
    mem::DualPortBram<tcp::Tcb> tcbTable_;
    mem::DualPortBram<tcp::EventRecord> eventTable_;
    FlowCam cam_;
    sim::RingFifo<FpuJob> fpuPipe_;
    std::size_t rrIndex_ = 0;
    /**
     * Cycle through which rrIndex_ is synced. The round-robin pointer
     * models a scan that advances on every dotted cycle whether or not
     * the FPC object ticked; fast-forward naps skip host events, and
     * the pointer catches up lazily at the top of tick().
     */
    sim::Cycles rrSyncedCycle_ = 0;
    /** Checked builds: validates the 1-event-per-2-cycles port claim. */
    F4T_IF_CHECKS(sim::Cycles lastEventCycle_ = 0;
                  bool anyEventHandled_ = false;)
    sim::Cycles lastInstallCycle_ = 0;
    /** Count of slots with evictFlag set (see pendingEvictions()). */
    std::size_t pendingEvictions_ = 0;
    bool installUsedThisWindow_ = false;
    /** Flight-recorder module id (interned once at construction). */
    std::uint16_t frModule_ = 0;

    ActionSink actionSink_;
    EvictSink evictSink_;

    sim::Counter eventsHandled_;
    sim::Counter fpuPasses_;
    sim::Counter evictions_;
    sim::Counter swapIns_;
    sim::Counter dupAckIncrements_;
};

} // namespace f4t::core

#endif // F4T_CORE_FPC_HH
