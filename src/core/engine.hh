/**
 * @file
 * FtEngine: the top-level FPGA TCP accelerator (Section 4.1, Fig. 3).
 *
 * Wires together the control path (host interface, RX parser event
 * generation, timers, scheduler, parallel FPCs, memory manager with
 * on-board DRAM/HBM) and the data path (packet generator, payload DMA,
 * ARP, ICMP). One FtEngine instance is one PCIe device attached to one
 * host and one network link.
 */

#ifndef F4T_CORE_ENGINE_HH
#define F4T_CORE_ENGINE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/arp_icmp.hh"
#include "core/fpc.hh"
#include "core/host_interface.hh"
#include "core/memory_manager.hh"
#include "core/packet_generator.hh"
#include "core/rx_parser.hh"
#include "core/scheduler.hh"
#include "core/timer_wheel.hh"
#include "host/pcie.hh"
#include "mem/dram.hh"
#include "net/link.hh"
#include "sim/simulation.hh"
#include "tcp/congestion.hh"
#include "tcp/fpu_program.hh"

namespace f4t::core
{

struct EngineConfig
{
    net::Ipv4Address ip = net::Ipv4Address::fromOctets(10, 0, 0, 1);
    net::MacAddress mac{{0x02, 0xf4, 0x70, 0x00, 0x00, 0x01}};

    std::size_t numFpcs = 8;
    std::size_t flowsPerFpc = 128;
    std::size_t maxFlows = 65536;
    mem::DramConfig dram = mem::DramConfig::hbm();

    std::string congestionControl = "newreno";
    /** Override every FPC's FPU latency (0 = policy default). */
    unsigned fpuLatencyOverride = 0;
    /** Shared TCP-logic tunables (RTO floor, TIME_WAIT, probes...). */
    tcp::FpuConfig fpu;

    std::size_t commandBytes = 16;
    bool payloadDma = true;

    std::uint16_t mss = 1460;
    std::size_t tcpBufferBytes = 512 * 1024;
    std::size_t tcbCacheLines = 1024;
    std::size_t fpcInputFifoDepth = 16;
    bool coalescingEnabled = true;

    host::PcieConfig pcie;
};

class FtEngine : public sim::SimObject, public net::PacketSink
{
  public:
    FtEngine(sim::Simulation &sim, std::string name,
             const EngineConfig &config);
    ~FtEngine() override;

    const EngineConfig &config() const { return config_; }

    /** Attach the network transmit side (LinkDirection::send). */
    void setTransmit(std::function<void(net::Packet &&)> tx);

    /** Static ARP entry for the directly cabled peer. */
    void addArpEntry(net::Ipv4Address ip, net::MacAddress mac);

    // --- network side -------------------------------------------------------
    void receivePacket(net::Packet &&pkt) override;

    // --- host side -----------------------------------------------------------
    host::PcieModel &pcie() { return pcie_; }
    HostInterface &hostInterface() { return *hostInterface_; }

    /** Translate and apply one host command (from the host interface). */
    void handleHostCommand(const host::Command &command, std::size_t queue);

    // --- synthetic benchmark hooks -------------------------------------------
    /**
     * Create a flow already in ESTABLISHED state with a wide-open
     * window — used by the event-rate microbenchmarks (Fig. 2 / 15 /
     * 16) that measure the processing architecture without a peer.
     */
    tcp::FlowId createSyntheticFlow(std::uint32_t peer_window = 1u << 30);

    /** Inject an event directly into the scheduler. */
    void injectEvent(const tcp::TcpEvent &event);

    /** Merged view of a flow's TCB wherever it lives (diagnostics:
     *  cwnd tracing for Fig. 14, tests). */
    tcp::Tcb peekTcb(tcp::FlowId flow);

    /** Deterministic transmit stream base for a flow (iss + 1). */
    static net::SeqNum txStart(tcp::FlowId flow)
    {
        return tcp::FpuProgram::initialSequence(flow) + 1;
    }

    // --- component access (benchmarks, tests, diagnostics) ----------------------
    Scheduler &scheduler() { return *scheduler_; }
    MemoryManager &memoryManager() { return *memoryManager_; }
    mem::DramModel &dram() { return *dram_; }
    RxParser &rxParser() { return *rxParser_; }
    PacketGenerator &packetGenerator() { return *packetGenerator_; }
    Fpc &fpc(std::size_t i) { return *fpcs_.at(i); }
    std::size_t fpcCount() const { return fpcs_.size(); }
    const tcp::FpuProgram &program() const { return *program_; }

    std::uint64_t flowsActive() const { return activeFlows_; }

  private:
    tcp::FlowId allocateFlowId();
    void recycleFlow(tcp::FlowId flow);
    tcp::FlowId acceptPassiveFlow(const net::FourTuple &tuple,
                                  net::MacAddress peer_mac);
    void openActiveFlow(const host::Command &command, std::size_t queue);
    void dispatchActions(tcp::FlowId flow, tcp::FpuActions &&actions);
    void onParsedEvent(const tcp::TcpEvent &event);
    FlowAddress addressFor(tcp::FlowId flow);
    tcp::Tcb freshTcb(tcp::FlowId flow, const net::FourTuple &tuple,
                      bool passive) const;

    struct FlowInfo
    {
        bool active = false;
        net::FourTuple tuple;
        net::MacAddress peerMac;
        net::SeqNum rxStart = 0;
        bool rxStartKnown = false;
        std::size_t queueIndex = 0;
        std::uint16_t cookie = 0;
        bool passive = false;
    };

    EngineConfig config_;

    host::PcieModel pcie_;
    std::unique_ptr<mem::DramModel> dram_;
    std::unique_ptr<tcp::CongestionControl> ccPolicy_;
    std::unique_ptr<tcp::FpuProgram> program_;
    std::vector<std::unique_ptr<Fpc>> fpcs_;
    std::unique_ptr<Scheduler> scheduler_;
    std::unique_ptr<MemoryManager> memoryManager_;
    std::unique_ptr<RxParser::FlowLookup> flowTable_;
    std::unique_ptr<RxParser> rxParser_;
    std::unique_ptr<PacketGenerator> packetGenerator_;
    std::unique_ptr<TimerWheel> timerWheel_;
    std::unique_ptr<HostInterface> hostInterface_;
    std::unique_ptr<ArpModule> arp_;
    std::unique_ptr<IcmpModule> icmp_;

    std::function<void(net::Packet &&)> transmit_;

    std::vector<FlowInfo> flowInfo_;
    std::vector<tcp::FlowId> freeFlowIds_;
    std::uint64_t activeFlows_ = 0;
    std::uint16_t nextEphemeralPort_ = 40000;

    /** SO_REUSEPORT: listening queues per port, used round-robin. */
    std::map<std::uint16_t, std::vector<std::size_t>> listeners_;
    std::map<std::uint16_t, std::size_t> listenerNext_;

    sim::Counter flowsOpened_;
    sim::Counter flowsClosed_;
    sim::Counter synDropsNoListener_;
};

} // namespace f4t::core

#endif // F4T_CORE_ENGINE_HH
