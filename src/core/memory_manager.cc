#include "memory_manager.hh"

#include "core/scheduler.hh"
#include "sim/causal_trace.hh"

namespace f4t::core
{

namespace
{

/** Park an event's causal-trace token with the TCB it merged into, so
 *  the request's span survives the flow's stay in (or transit through)
 *  DRAM. */
void
carryTrace(MigratingTcb &entry, const tcp::TcpEvent &event)
{
    if constexpr (sim::trace::compiledIn) {
        if (event.trace.valid())
            entry.trace.add(event.trace);
    }
}

} // namespace

MemoryManager::MemoryManager(sim::Simulation &sim, std::string name,
                             sim::ClockDomain &domain,
                             mem::DramModel &dram,
                             const MemoryManagerConfig &config)
    : ClockedObject(sim, std::move(name), domain), config_(config),
      dram_(dram), cache_(config.cacheLines),
      eventsHandled_(sim.stats(), statName("eventsHandled"),
                     "events handled against DRAM-resident TCBs"),
      cacheHits_(sim.stats(), statName("cacheHits"), "TCB cache hits"),
      cacheMisses_(sim.stats(), statName("cacheMisses"),
                   "TCB cache misses (DRAM reads)"),
      swapInRequests_(sim.stats(), statName("swapInRequests"),
                      "flows flagged sendable by the check logic"),
      writebacks_(sim.stats(), statName("writebacks"),
                  "dirty cache lines written back to DRAM")
{
    sim.registerAudit(this, statName("audit"),
                      [this] { auditInvariants(); });
}

MemoryManager::~MemoryManager()
{
    sim().deregisterAudits(this);
}

void
MemoryManager::auditInvariants() const
{
    // Every structure keyed by flow refers to a DRAM-resident TCB:
    // extract/drop purge the side structures along with the backing.
    for (const auto &[flow, events] : missQueues_) {
        F4T_CHECK(backing_.count(flow) != 0,
                  "%s: miss queue (%zu events) for absent flow %u",
                  name().c_str(), events.size(), flow);
    }
    for (tcp::FlowId flow : swapRequested_) {
        F4T_CHECK(backing_.count(flow) != 0,
                  "%s: swap-in requested for absent flow %u",
                  name().c_str(), flow);
    }
    for (const tcp::TcpEvent &event : inputFifo_) {
        F4T_CHECK(backing_.count(event.flow) != 0,
                  "%s: queued event for absent flow %u", name().c_str(),
                  event.flow);
    }
    for (const auto &[flow, entry] : backing_) {
        F4T_CHECK(entry.tcb.flowId == flow,
                  "%s: backing entry %u holds TCB of flow %u",
                  name().c_str(), flow, entry.tcb.flowId);
        tcp::checkTcbInvariants(tcp::merge(entry.tcb, entry.events),
                                name().c_str());
    }
}

bool
MemoryManager::cacheAccess(tcp::FlowId flow, bool dirty,
                           sim::Tick *miss_ready)
{
    if (cache_.find(flow)) {
        cache_.recordHit();
        ++cacheHits_;
        if (dirty)
            cache_.markDirty(flow);
        return true;
    }
    cache_.recordMiss();
    ++cacheMisses_;
    F4T_TRACE_CD(MemoryManager, clock(), "%s: TCB cache miss flow=%u",
                 name().c_str(), flow);
    // Fetch the line; a displaced dirty resident is written back.
    auto victim = cache_.insert(flow, 0, dirty);
    sim::Tick ready = dram_.accessTime(tcp::tcbWireBytes);
    if (victim) {
        ++writebacks_;
        dram_.accessTime(tcp::tcbWireBytes);
    }
    if (miss_ready)
        *miss_ready = ready;
    return false;
}

void
MemoryManager::insertFlow(MigratingTcb &&incoming,
                          std::function<void()> on_complete)
{
    tcp::FlowId flow = incoming.tcb.flowId;
    F4T_TRACE(MemoryManager, "%s: insert flow %u (%zu resident)",
              name().c_str(), flow, backing_.size() + 1);
    backing_[flow] = std::move(incoming);
    // The line lands in the cache dirty; DRAM sees it on writeback.
    auto victim = cache_.insert(flow, 0, true);
    sim::Tick arrival = now() + clock().period();
    if (victim) {
        ++writebacks_;
        arrival = dram_.accessTime(tcp::tcbWireBytes);
    }
    swapRequested_.erase(flow);
    if (on_complete)
        queue().scheduleCallback(arrival, "memmgr.insert",
                                 std::move(on_complete));

    // The arriving TCB may already carry work (e.g., events accumulated
    // while the flow was migrating); the check logic looks right away.
    checkLogic(flow);
    activate();
}

void
MemoryManager::extractFlow(tcp::FlowId flow,
                           std::function<void(MigratingTcb &&)> on_ready)
{
    auto it = backing_.find(flow);
    f4t_assert(it != backing_.end(), "%s: extract of absent flow %u",
               name().c_str(), flow);
    MigratingTcb leaving = std::move(it->second);
    backing_.erase(it);
    swapRequested_.erase(flow);
    F4T_TRACE(MemoryManager, "%s: extract flow %u (%zu resident)",
              name().c_str(), flow, backing_.size());

    // Events parked behind an in-flight fetch travel with the TCB so
    // nothing is lost when the flow leaves mid-miss.
    if (auto mq = missQueues_.find(flow); mq != missQueues_.end()) {
        for (const tcp::TcpEvent &ev : mq->second) {
            tcp::accumulateEvent(leaving.events, leaving.tcb, ev);
            carryTrace(leaving, ev);
        }
        missQueues_.erase(mq);
    }

    // The analog of the FPC's evict checker: events already routed
    // into our input FIFO before the scheduler marked the flow as
    // moving must leave with the TCB, not dangle behind it.
    for (auto it2 = inputFifo_.begin(); it2 != inputFifo_.end();) {
        if (it2->flow == flow) {
            tcp::accumulateEvent(leaving.events, leaving.tcb, *it2);
            carryTrace(leaving, *it2);
            it2 = inputFifo_.erase(it2);
        } else {
            ++it2;
        }
    }

    sim::Tick ready;
    if (cache_.invalidate(flow)) {
        // SRAM-resident: forwarding needs no DRAM round trip.
        ready = now() + clock().period();
    } else {
        ready = dram_.accessTime(tcp::tcbWireBytes);
    }
    queue().scheduleCallback(
        ready, "memmgr.extract",
        [cb = std::move(on_ready), tcb = std::move(leaving)]() mutable {
            cb(std::move(tcb));
        });
}

void
MemoryManager::dropFlow(tcp::FlowId flow)
{
    backing_.erase(flow);
    cache_.invalidate(flow);
    missQueues_.erase(flow);
    swapRequested_.erase(flow);
}

void
MemoryManager::enqueueEvent(const tcp::TcpEvent &event)
{
    f4t_assert(canAcceptEvent(), "%s: event enqueued past backpressure",
               name().c_str());
    inputFifo_.push_back(event);
    activate();
}

bool
MemoryManager::tick()
{
    // One event absorbed per cycle when its TCB is cache-resident.
    if (!inputFifo_.empty()) {
        tcp::TcpEvent event = inputFifo_.front();
        inputFifo_.pop_front();
        applyEvent(event);
    }
    return !inputFifo_.empty();
}

void
MemoryManager::applyEvent(const tcp::TcpEvent &event)
{
    auto it = backing_.find(event.flow);
    if (it == backing_.end()) {
        // The flow left toward an FPC after this event was routed; the
        // scheduler's moving-state protocol makes this unreachable.
        f4t_panic("%s: event for flow %u not resident in DRAM",
                  name().c_str(), event.flow);
    }

    ++eventsHandled_;
    MigratingTcb &entry = it->second;

    // A fetch already in flight for this flow: keep ordering and make
    // sure no event can be lost to a concurrent extract.
    if (auto mq = missQueues_.find(event.flow); mq != missQueues_.end()) {
        mq->second.push_back(event);
        return;
    }

    sim::Tick miss_ready = 0;
    bool hit = cacheAccess(event.flow, /*dirty=*/true, &miss_ready);
    if (hit) {
        tcp::accumulateEvent(entry.events, entry.tcb, event);
        carryTrace(entry, event);
        checkLogic(event.flow);
        return;
    }

    // Miss: the functional update happens when the fetch completes;
    // meanwhile later events of the same flow queue behind it.
    auto [mq, inserted] = missQueues_.try_emplace(event.flow);
    mq->second.push_back(event);
    if (!inserted)
        return; // fetch already in flight

    tcp::FlowId flow = event.flow;
    queue().scheduleCallback(miss_ready, "memmgr.missReady", [this, flow] {
        auto mq_it = missQueues_.find(flow);
        if (mq_it == missQueues_.end())
            return;
        auto events = std::move(mq_it->second);
        missQueues_.erase(mq_it);
        auto backing_it = backing_.find(flow);
        if (backing_it == backing_.end())
            return; // extracted while the fetch was in flight
        for (const tcp::TcpEvent &ev : events) {
            tcp::accumulateEvent(backing_it->second.events,
                                 backing_it->second.tcb, ev);
            carryTrace(backing_it->second, ev);
        }
        checkLogic(flow);
    });
}

void
MemoryManager::checkLogic(tcp::FlowId flow)
{
    if (!scheduler_ || swapRequested_.count(flow))
        return;
    auto it = backing_.find(flow);
    if (it == backing_.end())
        return;
    tcp::Tcb merged = tcp::merge(it->second.tcb, it->second.events);
    if (tcp::FpuProgram::tcbNeedsProcessing(merged)) {
        if (scheduler_->requestSwapIn(flow)) {
            // A taken request extracts the flow from DRAM synchronously,
            // so nothing remains resident to mark as requested.
            ++swapInRequests_;
            F4T_TRACE(MemoryManager, "%s: flow %u sendable, swap-in "
                      "requested", name().c_str(), flow);
            if (auto *tl = sim().timeline())
                tl->instant(name(), "migration",
                            "swap-in request flow " + std::to_string(flow),
                            now());
        } else {
            // Mid-migration: suppress re-requests until the scheduler
            // pokes us via recheckFlow() once the location settles.
            swapRequested_.insert(flow);
        }
    }
}

} // namespace f4t::core
