#include "engine.hh"

#include "sim/causal_trace.hh"

namespace f4t::core
{

FtEngine::FtEngine(sim::Simulation &sim, std::string name,
                   const EngineConfig &config)
    : SimObject(sim, std::move(name)), config_(config),
      pcie_(sim, statName("pcie"), config.pcie),
      flowInfo_(config.maxFlows),
      flowsOpened_(sim.stats(), statName("flowsOpened"),
                   "flows allocated"),
      flowsClosed_(sim.stats(), statName("flowsClosed"), "flows recycled"),
      synDropsNoListener_(sim.stats(), statName("synDropsNoListener"),
                          "SYNs dropped: no listener")
{
    dram_ = std::make_unique<mem::DramModel>(sim, statName("dram"),
                                             config_.dram);
    ccPolicy_ = tcp::makeCongestionControl(config_.congestionControl);
    program_ = std::make_unique<tcp::FpuProgram>(*ccPolicy_, config_.fpu);

    FpcConfig fpc_config;
    fpc_config.slots = config_.flowsPerFpc;
    fpc_config.inputFifoDepth = config_.fpcInputFifoDepth;
    fpc_config.fpuLatencyOverride = config_.fpuLatencyOverride;
    for (std::size_t i = 0; i < config_.numFpcs; ++i) {
        fpcs_.push_back(std::make_unique<Fpc>(
            sim, statName("fpc" + std::to_string(i)), sim.engineClock(),
            *program_, fpc_config));
        fpcs_.back()->setActionSink(
            [this](tcp::FlowId flow, tcp::FpuActions &&actions) {
                dispatchActions(flow, std::move(actions));
            });
    }

    SchedulerConfig sched_config;
    sched_config.maxFlows = config_.maxFlows;
    sched_config.coalescingEnabled = config_.coalescingEnabled;
    scheduler_ = std::make_unique<Scheduler>(sim, statName("scheduler"),
                                             sim.engineClock(),
                                             sched_config);
    std::vector<Fpc *> fpc_ptrs;
    for (auto &fpc : fpcs_)
        fpc_ptrs.push_back(fpc.get());
    scheduler_->attachFpcs(std::move(fpc_ptrs));

    MemoryManagerConfig mm_config;
    mm_config.cacheLines = config_.tcbCacheLines;
    memoryManager_ = std::make_unique<MemoryManager>(
        sim, statName("memoryManager"), sim.engineClock(), *dram_,
        mm_config);
    memoryManager_->setScheduler(scheduler_.get());
    scheduler_->attachMemoryManager(memoryManager_.get());

    flowTable_ = std::make_unique<RxParser::FlowLookup>(config_.maxFlows);

    RxParserConfig parser_config;
    parser_config.maxFlows = config_.maxFlows;
    parser_config.receiveBufferBytes = config_.tcpBufferBytes;
    rxParser_ = std::make_unique<RxParser>(sim, statName("rxParser"),
                                           *flowTable_, parser_config);
    rxParser_->setEventSink(
        [this](const tcp::TcpEvent &event) { onParsedEvent(event); });
    rxParser_->setSynHandler(
        [this](const net::FourTuple &tuple, net::MacAddress mac) {
            return acceptPassiveFlow(tuple, mac);
        });

    packetGenerator_ = std::make_unique<PacketGenerator>(
        sim, statName("packetGenerator"), sim.netClock(), config_.mss);
    packetGenerator_->setAddressLookup(
        [this](tcp::FlowId flow) { return addressFor(flow); });
    // The engine pointer is the causal tracer's flow-namespace key: the
    // same (domain, flow) pair must be used by the library's
    // beginRequest and the generator's wire-span bookkeeping.
    packetGenerator_->setTraceDomain(this);

    timerWheel_ = std::make_unique<TimerWheel>(sim, statName("timers"));
    timerWheel_->setSink([this](const tcp::TcpEvent &event) {
        scheduler_->submitEvent(event);
    });

    HostInterfaceConfig host_config;
    host_config.commandBytes = config_.commandBytes;
    host_config.payloadDma = config_.payloadDma;
    hostInterface_ = std::make_unique<HostInterface>(
        sim, statName("hostInterface"), pcie_, host_config);
    hostInterface_->setCommandHandler(
        [this](const host::Command &cmd, std::size_t queue) {
            handleHostCommand(cmd, queue);
        });
    rxParser_->setPayloadSink(hostInterface_.get());
    packetGenerator_->setPayloadSource(hostInterface_.get());

    arp_ = std::make_unique<ArpModule>(sim, statName("arp"), config_.ip,
                                       config_.mac);
    icmp_ = std::make_unique<IcmpModule>(sim, statName("icmp"), config_.ip,
                                         config_.mac);

    freeFlowIds_.reserve(config_.maxFlows);
    for (std::size_t i = config_.maxFlows; i > 0; --i)
        freeFlowIds_.push_back(static_cast<tcp::FlowId>(i - 1));
}

FtEngine::~FtEngine() = default;

void
FtEngine::setTransmit(std::function<void(net::Packet &&)> tx)
{
    transmit_ = std::move(tx);
    packetGenerator_->setTransmit(transmit_);
    arp_->setTransmit(transmit_);
    icmp_->setTransmit(transmit_);
}

void
FtEngine::addArpEntry(net::Ipv4Address ip, net::MacAddress mac)
{
    arp_->addStaticEntry(ip, mac);
}

void
FtEngine::receivePacket(net::Packet &&pkt)
{
    if (pkt.isArp()) {
        arp_->processPacket(pkt);
        return;
    }
    if (pkt.isIcmp()) {
        icmp_->processPacket(pkt);
        return;
    }
    if (pkt.isTcp() && pkt.ip && pkt.ip->dst == config_.ip) {
        rxParser_->processPacket(pkt);
        return;
    }
}

void
FtEngine::onParsedEvent(const tcp::TcpEvent &event)
{
    if constexpr (sim::trace::compiledIn) {
        if (event.trace.valid()) {
            if (auto *ct = sim().causalTracer()) {
                ct->arrivedRx(event.trace, this, event.flow, now());
                ct->eventQueued(event.trace, now());
            }
        }
    }

    // Glue: the first SYN/SYN-ACK tells us the peer's sequence base,
    // which the payload DMA and notification offset conversion need.
    if (event.tcpFlags & net::TcpFlags::syn) {
        FlowInfo &info = flowInfo_[event.flow];
        if (!info.rxStartKnown) {
            info.rxStart = event.peerIsn + 1;
            info.rxStartKnown = true;
            hostInterface_->setRxStart(event.flow, info.rxStart);
        }
    }
    scheduler_->submitEvent(event);
}

tcp::FlowId
FtEngine::allocateFlowId()
{
    if (freeFlowIds_.empty())
        return tcp::invalidFlowId;
    tcp::FlowId flow = freeFlowIds_.back();
    freeFlowIds_.pop_back();
    ++activeFlows_;
    ++flowsOpened_;
    return flow;
}

tcp::Tcb
FtEngine::freshTcb(tcp::FlowId flow, const net::FourTuple &tuple,
                   bool passive) const
{
    tcp::Tcb tcb;
    tcb.flowId = flow;
    tcb.tuple = tuple;
    tcb.passiveOpen = passive;
    tcb.mss = config_.mss;
    tcb.rcvBufBytes = static_cast<std::uint32_t>(config_.tcpBufferBytes);
    // Deterministic ISS lets the host library compute its stream base
    // without a round trip; the FPU re-derives the same value.
    tcb.iss = tcp::FpuProgram::initialSequence(flow);
    tcb.sndUna = tcb.iss;
    tcb.sndUnaProcessed = tcb.iss;
    tcb.sndNxt = tcb.iss + 1;
    tcb.req = tcb.iss + 1;
    tcb.lastAckNotified = tcb.iss + 1;
    return tcb;
}

tcp::FlowId
FtEngine::acceptPassiveFlow(const net::FourTuple &tuple,
                            net::MacAddress peer_mac)
{
    auto listener = listeners_.find(tuple.localPort);
    if (listener == listeners_.end() || listener->second.empty()) {
        ++synDropsNoListener_;
        return tcp::invalidFlowId;
    }

    tcp::FlowId flow = allocateFlowId();
    if (flow == tcp::invalidFlowId)
        return flow;

    if (!flowTable_->insert(tuple, flow)) {
        recycleFlow(flow);
        return tcp::invalidFlowId;
    }

    FlowInfo &info = flowInfo_[flow];
    info = FlowInfo{};
    info.active = true;
    info.tuple = tuple;
    info.peerMac = peer_mac;
    info.passive = true;

    // SO_REUSEPORT: distribute accepted flows round-robin over the
    // threads listening on this port (Section 4.6).
    auto &queues = listener->second;
    std::size_t &next = listenerNext_[tuple.localPort];
    info.queueIndex = queues[next % queues.size()];
    ++next;
    hostInterface_->setFlowQueue(flow, info.queueIndex);
    hostInterface_->setFlowSeqBase(flow, txStart(flow), 0);

    MigratingTcb fresh;
    fresh.tcb = freshTcb(flow, tuple, /*passive=*/true);
    scheduler_->allocateFlow(fresh);
    F4T_TRACE(Engine, "%s: accept flow %u on port %u (%llu active)",
              name().c_str(), flow, tuple.localPort,
              static_cast<unsigned long long>(activeFlows_));
    if (auto *tl = sim().timeline())
        tl->instant(name(), "flow",
                    "accept flow " + std::to_string(flow), now());
    return flow;
}

void
FtEngine::openActiveFlow(const host::Command &command, std::size_t queue)
{
    net::Ipv4Address remote_ip{command.arg0};
    std::uint16_t remote_port =
        static_cast<std::uint16_t>(command.arg1 >> 16);
    std::uint16_t cookie = static_cast<std::uint16_t>(command.arg1);

    tcp::FlowId flow = allocateFlowId();
    if (flow == tcp::invalidFlowId) {
        host::Command reject;
        reject.op = host::CmdOp::reset;
        reject.flow = tcp::invalidFlowId;
        reject.arg1 = cookie;
        hostInterface_->postCompletion(0, reject);
        return;
    }

    net::FourTuple tuple{config_.ip, nextEphemeralPort_++, remote_ip,
                         remote_port};
    auto peer_mac = arp_->resolve(remote_ip);
    if (!peer_mac) {
        // The testbed is directly cabled; unresolvable peers are a
        // configuration error, but issue the ARP request anyway.
        arp_->sendRequest(remote_ip);
        f4t_warn("%s: no ARP entry for %s", name().c_str(),
                 remote_ip.toString().c_str());
        recycleFlow(flow);
        return;
    }

    if (!flowTable_->insert(tuple, flow)) {
        recycleFlow(flow);
        return;
    }

    FlowInfo &info = flowInfo_[flow];
    info = FlowInfo{};
    info.active = true;
    info.tuple = tuple;
    info.peerMac = *peer_mac;
    info.queueIndex = queue;
    info.cookie = cookie;
    hostInterface_->setFlowQueue(flow, queue);
    hostInterface_->setFlowSeqBase(flow, txStart(flow), 0);

    MigratingTcb fresh;
    fresh.tcb = freshTcb(flow, tuple, /*passive=*/false);
    scheduler_->allocateFlow(fresh);
    F4T_TRACE(Engine, "%s: connect flow %u -> %s:%u (%llu active)",
              name().c_str(), flow, remote_ip.toString().c_str(),
              remote_port, static_cast<unsigned long long>(activeFlows_));
    if (auto *tl = sim().timeline())
        tl->instant(name(), "flow",
                    "connect flow " + std::to_string(flow), now());

    tcp::TcpEvent open;
    open.flow = flow;
    open.type = tcp::TcpEventType::userConnect;
    scheduler_->submitEvent(open);
}

void
FtEngine::handleHostCommand(const host::Command &command, std::size_t queue)
{
    switch (command.op) {
      case host::CmdOp::listen: {
        std::uint16_t port = static_cast<std::uint16_t>(command.arg0);
        listeners_[port].push_back(command.arg1);
        return;
      }
      case host::CmdOp::connect:
        openActiveFlow(command, queue);
        return;
      case host::CmdOp::send: {
        const FlowInfo &info = flowInfo_[command.flow];
        if (!info.active)
            return;
        tcp::TcpEvent event;
        event.flow = command.flow;
        event.type = tcp::TcpEventType::userSend;
        event.pointer = txStart(command.flow) + command.arg0;
        event.trace = command.trace;
        if constexpr (sim::trace::compiledIn) {
            if (auto *ct = sim().causalTracer();
                ct && command.trace.valid()) {
                ct->setWireTarget(command.trace, event.pointer);
                ct->eventQueued(command.trace, now());
            }
        }
        scheduler_->submitEvent(event);
        return;
      }
      case host::CmdOp::recv: {
        const FlowInfo &info = flowInfo_[command.flow];
        if (!info.active || !info.rxStartKnown)
            return;
        net::SeqNum pointer = info.rxStart + command.arg0;
        rxParser_->onUserRead(command.flow, pointer);
        tcp::TcpEvent event;
        event.flow = command.flow;
        event.type = tcp::TcpEventType::userRecv;
        event.pointer = pointer;
        scheduler_->submitEvent(event);
        return;
      }
      case host::CmdOp::close: {
        const FlowInfo &info = flowInfo_[command.flow];
        if (!info.active)
            return;
        tcp::TcpEvent event;
        event.flow = command.flow;
        event.type = tcp::TcpEventType::userClose;
        scheduler_->submitEvent(event);
        return;
      }
      default:
        f4t_panic("%s: unexpected host command op %s", name().c_str(),
                  host::toString(command.op));
    }
}

FlowAddress
FtEngine::addressFor(tcp::FlowId flow)
{
    const FlowInfo &info = flowInfo_[flow];
    f4t_assert(info.active, "address lookup for inactive flow %u", flow);
    return FlowAddress{info.tuple, config_.mac, info.peerMac};
}

void
FtEngine::dispatchActions(tcp::FlowId flow, tcp::FpuActions &&actions)
{
    FlowInfo &info = flowInfo_[flow];

    for (const tcp::TimerRequest &timer : actions.timers)
        timerWheel_->program(timer);

    for (const tcp::SegmentRequest &segment : actions.segments)
        packetGenerator_->requestSegments(segment);

    for (const tcp::ControlRequest &control : actions.controls)
        packetGenerator_->requestControl(control);

    for (const tcp::HostNotification &note : actions.notifications) {
        host::Command cmd;
        cmd.flow = flow;
        switch (note.kind) {
          case tcp::HostNotification::Kind::connected:
            cmd.op = info.passive ? host::CmdOp::accepted
                                  : host::CmdOp::connected;
            cmd.arg0 = 0; // stream offset base
            cmd.arg1 = info.passive ? info.tuple.localPort : info.cookie;
            break;
          case tcp::HostNotification::Kind::acked:
            cmd.op = host::CmdOp::acked;
            cmd.arg0 = note.pointer - txStart(flow);
            break;
          case tcp::HostNotification::Kind::received:
            cmd.op = host::CmdOp::received;
            cmd.arg0 = note.pointer - info.rxStart;
            if constexpr (sim::trace::compiledIn) {
                if (auto *ct = sim().causalTracer())
                    cmd.trace = ct->upcallPosted(this, flow, cmd.arg0,
                                                 now());
            }
            break;
          case tcp::HostNotification::Kind::peerClosed:
            cmd.op = host::CmdOp::peerClosed;
            break;
          case tcp::HostNotification::Kind::closed:
            cmd.op = host::CmdOp::closed;
            break;
          case tcp::HostNotification::Kind::reset:
            cmd.op = host::CmdOp::reset;
            break;
        }
        hostInterface_->postCompletion(flow, cmd);
    }

    if (actions.releaseFlow)
        recycleFlow(flow);
}

void
FtEngine::recycleFlow(tcp::FlowId flow)
{
    FlowInfo &info = flowInfo_[flow];
    if (info.active) {
        if constexpr (sim::trace::compiledIn) {
            if (auto *ct = sim().causalTracer())
                ct->flowAborted(this, flow, now());
        }
        flowTable_->erase(info.tuple);
        scheduler_->freeFlow(flow);
        rxParser_->dropFlow(flow);
        timerWheel_->cancelAll(flow);
        hostInterface_->dropFlow(flow);
        ++flowsClosed_;
        F4T_TRACE(Engine, "%s: recycle flow %u (%llu active)",
                  name().c_str(), flow,
                  static_cast<unsigned long long>(activeFlows_ - 1));
        if (auto *tl = sim().timeline())
            tl->instant(name(), "flow",
                        "recycle flow " + std::to_string(flow), now());
    }
    info = FlowInfo{};
    freeFlowIds_.push_back(flow);
    if (activeFlows_ > 0)
        --activeFlows_;
}

tcp::FlowId
FtEngine::createSyntheticFlow(std::uint32_t peer_window)
{
    tcp::FlowId flow = allocateFlowId();
    f4t_assert(flow != tcp::invalidFlowId, "out of synthetic flow IDs");

    net::FourTuple tuple{config_.ip,
                         static_cast<std::uint16_t>(10000 + (flow % 50000)),
                         net::Ipv4Address::fromOctets(10, 0, 0, 254),
                         static_cast<std::uint16_t>(20000 + (flow % 40000))};

    FlowInfo &info = flowInfo_[flow];
    info = FlowInfo{};
    info.active = true;
    info.tuple = tuple;
    info.peerMac = net::MacAddress{{0x02, 0, 0, 0, 0, 0xfe}};
    info.rxStart = 1;
    info.rxStartKnown = true;

    tcp::Tcb tcb = freshTcb(flow, tuple, /*passive=*/false);
    tcb.state = tcp::ConnState::established;
    tcb.sndWnd = peer_window;
    tcb.cwnd = peer_window;
    tcb.ssthresh = peer_window;
    tcb.ccPhase = tcp::CcPhase::congestionAvoidance;
    tcb.irs = 0;
    tcb.rcvNxt = 1;
    tcb.userRead = 1;
    tcb.lastAckSent = 1;
    tcb.lastRcvNotified = 1;
    tcb.lastWndAdvertised = 1 + tcb.receiveWindow();

    MigratingTcb fresh;
    fresh.tcb = tcb;
    scheduler_->allocateFlow(fresh);
    return flow;
}

void
FtEngine::injectEvent(const tcp::TcpEvent &event)
{
    scheduler_->submitEvent(event);
}

tcp::Tcb
FtEngine::peekTcb(tcp::FlowId flow)
{
    Location loc = scheduler_->location(flow);
    switch (loc.kind) {
      case Location::Kind::fpc:
        return fpcs_[loc.fpcIndex]->peekMergedTcb(flow);
      case Location::Kind::dram:
        return memoryManager_->peekMergedTcb(flow);
      default:
        // Mid-migration or unallocated: return an empty TCB; tracing
        // callers sample again on the next interval.
        return tcp::Tcb{};
    }
}

} // namespace f4t::core
