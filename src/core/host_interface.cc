#include "host_interface.hh"

#include "sim/causal_trace.hh"

namespace f4t::core
{

HostInterface::HostInterface(sim::Simulation &sim, std::string name,
                             host::PcieModel &pcie,
                             const HostInterfaceConfig &config)
    : SimObject(sim, std::move(name)), pcie_(pcie), config_(config),
      commandsFetched_(sim.stats(), statName("commandsFetched"),
                       "commands DMA-read from submission queues"),
      completionsPosted_(sim.stats(), statName("completionsPosted"),
                         "completions DMA-written to completion queues"),
      doorbells_(sim.stats(), statName("doorbells"),
                 "hardware doorbells observed"),
      payloadFetches_(sim.stats(), statName("payloadFetches"),
                      "transmit payload DMA reads"),
      payloadDeliveries_(sim.stats(), statName("payloadDeliveries"),
                         "receive payload DMA writes"),
      cqOverflows_(sim.stats(), statName("cqOverflows"),
                   "completions posted past the nominal ring depth")
{}

std::size_t
HostInterface::attachQueue(host::QueuePair *pair)
{
    queues_.push_back(QueueState{pair, false, {}, false});
    return queues_.size() - 1;
}

HostInterface::FlowState &
HostInterface::flowState(tcp::FlowId flow)
{
    if (flow >= flows_.size())
        flows_.resize(flow + 1);
    return flows_[flow];
}

void
HostInterface::setFlowQueue(tcp::FlowId flow, std::size_t queue_index)
{
    f4t_assert(queue_index < queues_.size(), "queue %zu out of range",
               queue_index);
    flowState(flow).queueIndex = queue_index;
}

std::size_t
HostInterface::flowQueue(tcp::FlowId flow) const
{
    return flow < flows_.size() ? flows_[flow].queueIndex : 0;
}

void
HostInterface::setFlowSeqBase(tcp::FlowId flow, net::SeqNum tx_start,
                              net::SeqNum rx_start)
{
    FlowState &state = flowState(flow);
    state.txStart = tx_start;
    state.rxStart = rx_start;
    state.rxStartKnown = true;
}

void
HostInterface::setRxStart(tcp::FlowId flow, net::SeqNum rx_start)
{
    FlowState &state = flowState(flow);
    state.rxStart = rx_start;
    state.rxStartKnown = true;
}

void
HostInterface::dropFlow(tcp::FlowId flow)
{
    if (flow < flows_.size())
        flows_[flow] = FlowState{};
}

void
HostInterface::onDoorbell(std::size_t queue_index)
{
    f4t_assert(queue_index < queues_.size(), "doorbell for queue %zu",
               queue_index);
    ++doorbells_;
    QueueState &state = queues_[queue_index];
    state.pair->hwDoorbell = true;
    if (!state.fetchInProgress)
        startFetch(queue_index);
}

void
HostInterface::startFetch(std::size_t queue_index)
{
    QueueState &state = queues_[queue_index];
    std::size_t pending = state.pair->sq.size();
    if (pending == 0) {
        state.fetchInProgress = false;
        state.pair->hwDoorbell = false;
        return;
    }
    std::size_t batch = pending < config_.fetchBatchMax
                            ? pending
                            : config_.fetchBatchMax;
    state.fetchInProgress = true;

    sim::Tick fetch_start = now();
    pcie_.hostToDevice(batch * config_.commandBytes,
                       [this, queue_index, batch, fetch_start] {
                           QueueState &qs = queues_[queue_index];
                           auto commands = qs.pair->sq.popBatch(batch);
                           commandsFetched_ += commands.size();
                           for (const host::Command &cmd : commands) {
                               if constexpr (sim::trace::compiledIn) {
                                   if (cmd.trace.valid()) {
                                       if (auto *ct = sim().causalTracer())
                                           ct->fetched(cmd.trace,
                                                       fetch_start, now());
                                   }
                               }
                               if (commandHandler_)
                                   commandHandler_(cmd, queue_index);
                           }
                           startFetch(queue_index);
                       });
}

void
HostInterface::postCompletion(tcp::FlowId flow, const host::Command &command)
{
    std::size_t queue_index = flowQueue(flow);
    QueueState &state = queues_.at(queue_index);
    state.stagedCompletions.push_back(command);
    if (state.flushScheduled)
        return;
    state.flushScheduled = true;
    queue().scheduleCallback(now() + config_.completionFlushDelay,
                             "hostif.flushCompletions", [this, queue_index] {
                                 flushCompletions(queue_index);
                             });
}

void
HostInterface::flushCompletions(std::size_t queue_index)
{
    QueueState &state = queues_[queue_index];
    state.flushScheduled = false;
    if (state.stagedCompletions.empty())
        return;

    std::vector<host::Command> batch;
    batch.swap(state.stagedCompletions);
    completionsPosted_ += batch.size();

    if constexpr (sim::trace::compiledIn) {
        if (auto *ct = sim().causalTracer()) {
            for (const host::Command &cmd : batch) {
                if (cmd.trace.valid())
                    ct->upcallService(cmd.trace, now());
            }
        }
    }

    pcie_.deviceToHost(
        batch.size() * config_.commandBytes,
        [this, queue_index, batch = std::move(batch)] {
            QueueState &qs = queues_[queue_index];
            for (const host::Command &cmd : batch) {
                if (!qs.pair->cq.push(cmd)) {
                    // A real device would backpressure its completion
                    // writes; the model counts the overflow (the ring
                    // is allowed to stretch so no completion is lost).
                    ++cqOverflows_;
                    if (cqOverflows_.value() == 1) {
                        f4t_warn("%s: completion queue %zu overflow "
                                 "(slow host poller; counted in "
                                 "cqOverflows)",
                                 name().c_str(), queue_index);
                    }
                }
            }
            qs.pair->swDoorbell = true;
            if (waker_)
                waker_(queue_index);
        });
}

sim::Tick
HostInterface::fetchPayload(tcp::FlowId flow, net::SeqNum seq,
                            std::span<std::uint8_t> out)
{
    ++payloadFetches_;
    // Header-only experiments (payloadDma off) skip the PCIe charge
    // but stay functional when host buffers exist; synthetic flows
    // without buffers send zero payload bytes.
    host::FlowBuffers *buffers =
        hostMemory_ ? hostMemory_->find(flow) : nullptr;
    if (!buffers) {
        f4t_assert(!config_.payloadDma, "payload fetch for flow %u "
                   "without host buffers", flow);
        return now();
    }
    const FlowState &state = flowState(flow);

    // Unwrap the wire sequence into a 64-bit stream offset near the
    // ring's retained range.
    net::SeqNum base_wire =
        state.txStart + static_cast<net::SeqNum>(buffers->tx.base());
    std::int32_t delta = net::seqDiff(seq, base_wire);
    std::uint64_t offset = buffers->tx.base() + delta;
    buffers->tx.copyOut(offset, out);

    return config_.payloadDma ? pcie_.hostToDevice(out.size()) : now();
}

void
HostInterface::deliverPayload(tcp::FlowId flow, net::SeqNum seq,
                              std::span<const std::uint8_t> data)
{
    ++payloadDeliveries_;
    if (!hostMemory_)
        return;

    host::FlowBuffers &buffers = hostMemory_->ensure(flow);
    const FlowState &state = flowState(flow);
    f4t_assert(state.rxStartKnown, "payload delivery for flow %u before "
               "its SYN was parsed", flow);

    net::SeqNum base_wire =
        state.rxStart + static_cast<net::SeqNum>(buffers.rx.base());
    std::int32_t delta = net::seqDiff(seq, base_wire);
    std::uint64_t offset = buffers.rx.base() + delta;
    buffers.rx.writeAt(offset, data);
    if (offset + data.size() > buffers.rxWritten)
        buffers.rxWritten = offset + data.size();

    if (config_.payloadDma)
        pcie_.deviceToHost(data.size());
}

} // namespace f4t::core
