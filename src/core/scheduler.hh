/**
 * @file
 * The scheduler: F4T's memory orchestration engine (Sections 4.3–4.4,
 * Figure 5).
 *
 * Responsibilities, exactly as in the paper:
 *  - track the up-to-date location of every flow's TCB in the
 *    location LUT (FPC #k, DRAM, or MOVING while a migration is in
 *    flight);
 *  - route events to the module holding their TCB, several per cycle
 *    (LUT partitions let one event route per FPC pair per cycle);
 *  - coalesce events of the same flow in 4 x 16-entry FIFOs before
 *    routing, but only when no information would be lost
 *    (Section 4.4.1);
 *  - park events whose flow is MOVING in the pending queue and retry
 *    every 12 cycles — retries always terminate because migrations
 *    complete and the LUT is updated before the mark clears;
 *    (modelled exactly, but executed lazily: MOVING-flow entries sit
 *    in per-flow parked lists and re-enter the retry calendar when the
 *    migration settles, at precisely the 12-cycle lattice point the
 *    polling hardware would next have attempted — see DESIGN.md §17);
 *  - drive migrations: eviction of cold flows to DRAM, swap-in of
 *    sendable flows from DRAM, and FPC-to-FPC rebalancing when one
 *    FPC's input backpressures (Section 4.4.2);
 *  - place new flows on the FPC with the lowest flow count.
 */

#ifndef F4T_CORE_SCHEDULER_HH
#define F4T_CORE_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "core/fpc.hh"
#include "sim/simulation.hh"
#include "tcp/tcb.hh"

namespace f4t::core
{

class MemoryManager;

/** Where a flow's TCB currently lives. */
struct Location
{
    enum class Kind : std::uint8_t
    {
        unallocated,
        fpc,
        dram,
        moving,
    };

    Kind kind = Kind::unallocated;
    std::uint8_t fpcIndex = 0;
};

struct SchedulerConfig
{
    std::size_t maxFlows = 65536;
    std::size_t coalesceFifos = 4;
    std::size_t coalesceDepth = 16;
    sim::Cycles pendingRetryCycles = 12;
    /** Input backlog at which an FPC counts as congested. */
    std::size_t congestionThreshold = 12;
    /** Event coalescing (Section 4.4.1); off in the 1FPC ablation. */
    bool coalescingEnabled = true;
};

class Scheduler : public sim::ClockedObject
{
  public:
    Scheduler(sim::Simulation &sim, std::string name,
              sim::ClockDomain &domain, const SchedulerConfig &config);
    ~Scheduler() override;

    /** Wire up the FPCs; also registers this scheduler as their evict
     *  sink. Call once at construction time. */
    void attachFpcs(std::vector<Fpc *> fpcs);
    void attachMemoryManager(MemoryManager *manager);

    /**
     * Migration-protocol invariant audit (checked builds): every
     * allocated flow's TCB exists in exactly one place consistent with
     * its location-LUT entry — no TCB is lost or duplicated across
     * MOVING states — and no module holds a TCB the LUT forgot.
     */
    void auditInvariants() const;

    // --- flow lifecycle ----------------------------------------------------
    /**
     * Place a brand-new flow: the FPC with the lowest flow count, or
     * DRAM when every FPC is full.
     */
    void allocateFlow(const MigratingTcb &initial);

    /** Remove a closed flow from the LUT (engine recycles the ID). */
    void freeFlow(tcp::FlowId flow);

    Location location(tcp::FlowId flow) const;

    // --- event input ---------------------------------------------------------
    /** Submit an event from the host interface / RX parser / timers. */
    void submitEvent(const tcp::TcpEvent &event);

    // --- migration protocol ---------------------------------------------------
    /**
     * Memory manager's check logic found a sendable DRAM flow.
     * @return false when the request cannot be taken now (the flow is
     * mid-migration); the caller must retry when the move settles.
     */
    bool requestSwapIn(tcp::FlowId flow);

    // --- statistics ------------------------------------------------------------
    std::uint64_t eventsRouted() const { return eventsRouted_.value(); }
    std::uint64_t eventsCoalesced() const { return eventsCoalesced_.value(); }
    std::uint64_t migrations() const { return migrations_.value(); }
    std::uint64_t rebalances() const { return rebalances_.value(); }

  protected:
    bool tick() override;

  private:
    struct MoveState
    {
        bool toDram = false;
        std::uint8_t destFpc = 0;
        /** The TCB left its source and awaits installation. */
        std::optional<MigratingTcb> inTransit;
        /** A DRAM extract has been issued and is in flight. */
        bool extractPending = false;
        /** When the migration began (timeline span start). */
        sim::Tick startedAt = 0;
    };

    struct PendingEntry
    {
        tcp::TcpEvent event;
        /** Next attempt cycle; always on the entry's 12-cycle lattice
         *  (firstPend + k * pendingRetryCycles). */
        sim::Cycles retryCycle;
        /** Global first-pend order; ties on retryCycle break by it. */
        std::uint64_t pendSeq;
    };

    /** One retry-calendar slot: all queued entries sharing one
     *  retryCycle, kept in pendSeq order. Live retry cycles span at
     *  most pendingRetryCycles + 1 consecutive values, so a ring of
     *  that many buckets maps each live cycle to its own bucket. */
    struct PendingBucket
    {
        std::deque<PendingEntry> entries;
    };

    Location &lut(tcp::FlowId flow);
    const Location &lut(tcp::FlowId flow) const;

    /** Attempt to deliver one event; false means try again later. */
    bool routeEvent(const tcp::TcpEvent &event);

    /** Start evicting @p flow from its FPC toward @p destination. */
    void startEviction(tcp::FlowId flow, bool to_dram,
                       std::uint8_t dest_fpc);

    /** An evicted TCB arrived from an FPC. */
    void onEvicted(MigratingTcb &&leaving);

    /** A TCB extracted from DRAM is ready to install. */
    void onExtracted(MigratingTcb &&incoming);

    /** Try to finish pending installs (FPC swap-in port permitting). */
    void progressInstalls();

    /** Pick the FPC with the lowest flow count; nullopt if all full. */
    std::optional<std::size_t> leastLoadedFpc(bool require_space) const;

    /** Ensure space in @p fpc by evicting its coldest flow to DRAM. */
    void makeRoom(std::size_t fpc_index);

    /** Trace + timeline span for a migration that just completed. */
    void noteMigrationDone(tcp::FlowId flow, const char *kind,
                           sim::Tick started_at);

    // --- SoA per-flow state accessors (DESIGN.md §17) ---------------------
    /** Migration state for @p flow, or nullptr when not MOVING. */
    MoveState *movingState(tcp::FlowId flow);
    const MoveState *movingState(tcp::FlowId flow) const;
    MoveState &startMoving(tcp::FlowId flow, MoveState &&state);
    void stopMoving(tcp::FlowId flow);

    /** Append @p entry to the retry calendar at its retryCycle. */
    void appendPending(PendingEntry &&entry);
    /** Ordered insert (by pendSeq) for settle-time re-injection. */
    void insertPending(PendingEntry &&entry);
    /** Park @p entry on its flow's MOVING list (no calendar slot). */
    void parkEntry(PendingEntry &&entry);
    /**
     * A MOVING flow settled: re-inject its parked entries into the
     * retry calendar at the lattice point the polling hardware would
     * next have attempted. @p in_tick distinguishes the
     * progressInstalls path (before this tick's retry scan, so an
     * entry may mature this very cycle) from completion callbacks
     * (which run after the scheduler's tick at the same cycle).
     */
    void settleFlow(tcp::FlowId flow, bool in_tick);

    SchedulerConfig config_;
    std::vector<Fpc *> fpcs_;
    MemoryManager *memoryManager_ = nullptr;

    std::vector<Location> lut_;
    std::vector<std::deque<tcp::TcpEvent>> fifos_;
    std::size_t nextFifo_ = 0;

    // Retry state, SoA (DESIGN.md §17). The pending queue is a
    // calendar ring indexed by retryCycle % (pendingRetryCycles + 1);
    // live retry cycles span at most that many consecutive values, so
    // each nonempty bucket holds exactly one retry cycle. Entries
    // whose flow is MOVING are parked per flow instead — their retries
    // are provably side-effect-free, so the calendar only carries
    // attempts that can do work.
    std::vector<PendingBucket> pendingRing_;
    std::size_t pendingQueued_ = 0; ///< entries in the calendar ring
    std::size_t pendingParked_ = 0; ///< entries on parked lists
    std::uint64_t nextPendSeq_ = 0;

    /** Pended events per flow (queued + parked): O(1) "must queue
     *  behind pended work" test on the route path. Dense, indexed by
     *  FlowId (the engine allocates IDs below maxFlows). */
    std::vector<std::uint32_t> pendedCount_;

    /** Migration state: dense index into a pooled MoveState arena
     *  (-1 when not MOVING) replaces the former hash map, so the
     *  per-route moving test is one array load. */
    std::vector<std::int32_t> moveIdx_;
    std::vector<MoveState> movePool_;
    std::vector<std::int32_t> moveFree_;

    /** Parked MOVING-flow entries: dense index into pooled per-flow
     *  lists (-1 when none). Slots keep their capacity across reuse. */
    std::vector<std::int32_t> parkedIdx_;
    std::vector<std::deque<PendingEntry>> parkedPool_;
    std::vector<std::int32_t> parkedFree_;
    /** Install-ready flows, queued per destination FPC. Each FPC's
     *  swap-in port takes one TCB per two cycles, so only the head of
     *  each queue can ever make progress in a tick — per-FPC queues
     *  make progressInstalls O(#FPCs) instead of O(stuck installs). */
    std::vector<std::deque<tcp::FlowId>> installQueues_;
    std::size_t installsQueued_ = 0;
    /** Flight-recorder module id (interned once at construction). */
    std::uint16_t frModule_ = 0;

    sim::Counter eventsRouted_;
    sim::Counter eventsCoalesced_;
    sim::Counter eventsPended_;
    sim::Counter eventsParked_;
    sim::Counter retryAttempts_;
    sim::Counter migrations_;
    sim::Counter rebalances_;
    sim::Counter fifoOverflows_;
};

} // namespace f4t::core

#endif // F4T_CORE_SCHEDULER_HH
