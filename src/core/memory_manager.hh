/**
 * @file
 * The memory manager (Section 4.3.1, Figure 5): handles events for
 * DRAM-resident flows and decides which flows to swap back into FPCs.
 *
 * Like the FPC's event handler, it never processes TCP algorithms —
 * it only accumulates events into the DRAM-resident TCB (through a
 * direct-mapped TCB cache) and runs the check logic: if the flow could
 * now send packets / progress, it asks the scheduler to swap it in;
 * otherwise the flow keeps waiting in DRAM with its events recorded.
 *
 * Timing: the functional TCB content is authoritative in backing
 * storage; the cache model decides which accesses cost DRAM bandwidth.
 * A cache-resident flow absorbs one event per cycle; a miss stalls
 * that flow's events behind the DRAM fetch (other flows continue).
 */

#ifndef F4T_CORE_MEMORY_MANAGER_HH
#define F4T_CORE_MEMORY_MANAGER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <unordered_map>

#include "core/fpc.hh"
#include "mem/dram.hh"
#include "mem/tcb_cache.hh"
#include "sim/simulation.hh"
#include "tcp/fpu_program.hh"
#include "tcp/tcb.hh"

namespace f4t::core
{

class Scheduler;

struct MemoryManagerConfig
{
    std::size_t cacheLines = 4096;
    std::size_t inputFifoDepth = 64;
};

class MemoryManager : public sim::ClockedObject
{
  public:
    MemoryManager(sim::Simulation &sim, std::string name,
                  sim::ClockDomain &domain, mem::DramModel &dram,
                  const MemoryManagerConfig &config);
    ~MemoryManager() override;

    /**
     * Structural invariant audit (checked builds): miss queues, pending
     * swap-in marks, and queued events only reference DRAM-resident
     * flows, and every resident merged TCB is sequence-space sane.
     */
    void auditInvariants() const;

    void setScheduler(Scheduler *scheduler) { scheduler_ = scheduler; }

    // --- flow storage (called by the scheduler) ---------------------------
    /**
     * Store an arriving TCB (eviction from an FPC or a brand-new flow
     * placed in DRAM). @p on_complete fires when the TCB has "arrived"
     * and the location LUT may be updated (the evict-complete signal).
     */
    void insertFlow(MigratingTcb &&incoming,
                    std::function<void()> on_complete);

    /**
     * Remove a flow for swap-in to an FPC. The callback fires after
     * the (cache-hit or DRAM) read completes.
     */
    void extractFlow(tcp::FlowId flow,
                     std::function<void(MigratingTcb &&)> on_ready);

    /** Drop a closed flow entirely. */
    void dropFlow(tcp::FlowId flow);

    bool holdsFlow(tcp::FlowId flow) const
    {
        return backing_.count(flow) != 0;
    }

    /** Merged view of a resident TCB (diagnostics / tests). */
    tcp::Tcb
    peekMergedTcb(tcp::FlowId flow) const
    {
        auto it = backing_.find(flow);
        f4t_assert(it != backing_.end(), "peek of absent flow %u", flow);
        return tcp::merge(it->second.tcb, it->second.events);
    }

    std::size_t flowCount() const { return backing_.size(); }

    /** Re-run the check logic after the flow's location settled. */
    void
    recheckFlow(tcp::FlowId flow)
    {
        swapRequested_.erase(flow);
        checkLogic(flow);
    }

    // --- event input (from the scheduler) -----------------------------------
    bool canAcceptEvent() const
    {
        return inputFifo_.size() < config_.inputFifoDepth;
    }
    void enqueueEvent(const tcp::TcpEvent &event);

    // --- statistics ---------------------------------------------------------
    std::uint64_t eventsHandled() const { return eventsHandled_.value(); }
    std::uint64_t cacheHits() const { return cacheHits_.value(); }
    std::uint64_t cacheMisses() const { return cacheMisses_.value(); }
    std::uint64_t swapInRequests() const { return swapInRequests_.value(); }

  protected:
    bool tick() override;

  private:
    /** Apply one event to the authoritative TCB and run check logic. */
    void applyEvent(const tcp::TcpEvent &event);

    /** Touch the cache for @p flow; true = hit (no DRAM traffic). On a
     *  miss, @p miss_ready receives the DRAM fetch completion tick. */
    bool cacheAccess(tcp::FlowId flow, bool dirty,
                     sim::Tick *miss_ready = nullptr);

    void checkLogic(tcp::FlowId flow);

    MemoryManagerConfig config_;
    mem::DramModel &dram_;
    Scheduler *scheduler_ = nullptr;

    std::unordered_map<tcp::FlowId, MigratingTcb> backing_;
    mem::DirectMappedCache<std::uint8_t> cache_;
    std::deque<tcp::TcpEvent> inputFifo_;
    /** Events parked behind an in-flight DRAM fetch, per flow. */
    std::unordered_map<tcp::FlowId, std::deque<tcp::TcpEvent>> missQueues_;
    /** Flows already flagged to the scheduler for swap-in. */
    std::set<tcp::FlowId> swapRequested_;

    sim::Counter eventsHandled_;
    sim::Counter cacheHits_;
    sim::Counter cacheMisses_;
    sim::Counter swapInRequests_;
    sim::Counter writebacks_;
};

} // namespace f4t::core

#endif // F4T_CORE_MEMORY_MANAGER_HH
