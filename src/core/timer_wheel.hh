/**
 * @file
 * Per-flow timer module (Section 4.1.2): retransmission, zero-window
 * probe, delayed-ACK, and TIME_WAIT deadlines. Expiry produces a
 * timeout event into the scheduler, which treats it like any other
 * event (accumulated by overwriting — only the occurrence matters,
 * Section 4.2.1).
 */

#ifndef F4T_CORE_TIMER_WHEEL_HH
#define F4T_CORE_TIMER_WHEEL_HH

#include <cstdint>
#include <functional>
#include <map>

#include "sim/simulation.hh"
#include "tcp/fpu_program.hh"
#include "tcp/tcb.hh"

namespace f4t::core
{

class TimerWheel : public sim::SimObject
{
  public:
    using TimeoutSink = std::function<void(const tcp::TcpEvent &)>;

    TimerWheel(sim::Simulation &sim, std::string name)
        : SimObject(sim, std::move(name)),
          timeoutsFired_(sim.stats(), statName("timeoutsFired"),
                         "timeout events generated")
    {}

    void setSink(TimeoutSink sink) { sink_ = std::move(sink); }

    /** Apply a TimerRequest from an FPU pass (deadline 0 = cancel). */
    void
    program(const tcp::TimerRequest &request)
    {
        Key key{request.flow, request.kind};
        std::uint64_t generation = ++generations_[key];
        if (request.deadlineUs == 0)
            return; // cancelled: the generation bump squashes any firing

        sim::Tick when = static_cast<sim::Tick>(request.deadlineUs) *
                         1'000'000ULL;
        if (when < now())
            when = now();
        queue().scheduleCallback(when, "timer.fire", [this, key, generation] {
            auto it = generations_.find(key);
            if (it == generations_.end() || it->second != generation)
                return;
            tcp::TcpEvent event;
            event.flow = key.flow;
            event.type = tcp::TcpEventType::timeout;
            event.timeoutKind = key.kind;
            ++timeoutsFired_;
            F4T_TRACE(Timer, "%s: fire kind=%d flow=%u", name().c_str(),
                      static_cast<int>(key.kind), key.flow);
            if (auto *tl = sim().timeline())
                tl->instant(name(), "timer",
                            "timeout kind " +
                                std::to_string(static_cast<int>(key.kind)) +
                                " flow " + std::to_string(key.flow),
                            now());
            if (sink_)
                sink_(event);
        });
    }

    /** Drop every timer of a recycled flow. The generation bump (not
     *  an erase) guarantees stale callbacks can never match a timer
     *  re-armed after the flow ID is reused. */
    void
    cancelAll(tcp::FlowId flow)
    {
        for (auto kind : {tcp::TimeoutKind::retransmit,
                          tcp::TimeoutKind::probe,
                          tcp::TimeoutKind::delayedAck,
                          tcp::TimeoutKind::timeWait}) {
            ++generations_[Key{flow, kind}];
        }
    }

  private:
    struct Key
    {
        tcp::FlowId flow;
        tcp::TimeoutKind kind;

        bool
        operator<(const Key &other) const
        {
            if (flow != other.flow)
                return flow < other.flow;
            return static_cast<int>(kind) < static_cast<int>(other.kind);
        }
    };

    TimeoutSink sink_;
    std::map<Key, std::uint64_t> generations_;
    sim::Counter timeoutsFired_;
};

} // namespace f4t::core

#endif // F4T_CORE_TIMER_WHEEL_HH
