#include "packet_generator.hh"

#include "net/link.hh"
#include "sim/causal_trace.hh"

namespace f4t::core
{

PacketGenerator::PacketGenerator(sim::Simulation &sim, std::string name,
                                 sim::ClockDomain &domain,
                                 std::uint16_t mss)
    : SimObject(sim, std::move(name)), domain_(domain), mss_(mss),
      segments_(sim.stats(), statName("segments"),
                "data segments generated"),
      controls_(sim.stats(), statName("controls"),
                "control packets generated"),
      retransmits_(sim.stats(), statName("retransmissions"),
                   "retransmitted segments"),
      payloadBytes_(sim.stats(), statName("payloadBytes"),
                    "payload bytes fetched and sent")
{}

sim::Tick
PacketGenerator::nextSlot()
{
    sim::Tick slot = busyUntil_ > now() ? busyUntil_ : now();
    busyUntil_ = slot + domain_.period();
    return slot;
}

void
PacketGenerator::emit(net::Packet &&pkt, sim::Tick when)
{
    f4t_assert(transmit_ != nullptr, "%s has no transmit sink",
               name().c_str());
    if (when <= now()) {
        transmit_(std::move(pkt));
        return;
    }
    if (net::datapathBatchingEnabled()) {
        // Hand the segment over now with its emission tick stamped:
        // the link serializes no earlier than txReady, so wire timing
        // matches the scheduled path without one host event per
        // segment.
        pkt.txReady = when;
        transmit_(std::move(pkt));
        return;
    }
    queue().scheduleCallback(when, "pktgen.emit",
                             [this, p = std::move(pkt)]() mutable {
                                 transmit_(std::move(p));
                             });
}

void
PacketGenerator::requestSegments(const tcp::SegmentRequest &request)
{
    f4t_assert(lookup_ != nullptr, "%s has no address lookup",
               name().c_str());
    FlowAddress addr = lookup_(request.flow);

    if constexpr (sim::trace::compiledIn) {
        // Requests whose target byte rides in [seq+1, seq+length] enter
        // (or re-enter, on retransmission) the wire stage now.
        if (auto *ct = sim().causalTracer()) {
            ct->wireQueued(traceDomain_, request.flow, request.seq,
                           request.seq + request.length, now());
        }
    }

    std::uint32_t remaining = request.length;
    net::SeqNum seq = request.seq;
    while (remaining > 0) {
        std::uint32_t chunk = remaining < mss_ ? remaining : mss_;

        net::TcpHeader tcp;
        tcp.srcPort = addr.tuple.localPort;
        tcp.dstPort = addr.tuple.remotePort;
        tcp.seq = seq;
        tcp.ack = request.ack;
        tcp.flags = net::TcpFlags::ack | net::TcpFlags::psh;
        tcp.window = request.window;

        net::PayloadBuffer payload(chunk);
        sim::Tick data_ready = now();
        if (payload_)
            data_ready = payload_->fetchPayload(request.flow, seq, payload);

        bool last = remaining == chunk;
        if (request.fin && last)
            tcp.flags |= net::TcpFlags::fin;

        net::Packet pkt = net::Packet::makeTcp(
            addr.localMac, addr.peerMac, addr.tuple.localIp,
            addr.tuple.remoteIp, tcp, std::move(payload));

        if constexpr (sim::trace::compiledIn) {
            if (auto *ct = sim().causalTracer()) {
                pkt.trace = ct->wireToken(traceDomain_, request.flow, seq,
                                          chunk);
            }
        }

        ++segments_;
        if (request.retransmission) {
            ++retransmits_;
            if (auto *tl = sim().timeline())
                tl->instant(name(), "retransmit",
                            "rtx flow " + std::to_string(request.flow),
                            now());
        }
        payloadBytes_ += chunk;
        F4T_TRACE(PacketGenerator, "%s: segment flow=%u seq=%u len=%u%s%s",
                  name().c_str(), request.flow, seq, chunk,
                  request.retransmission ? " (rtx)" : "",
                  (request.fin && last) ? " FIN" : "");

        sim::Tick slot = nextSlot();
        emit(std::move(pkt), slot > data_ready ? slot : data_ready);

        seq += chunk;
        remaining -= chunk;
    }
}

void
PacketGenerator::requestControl(const tcp::ControlRequest &request)
{
    f4t_assert(lookup_ != nullptr, "%s has no address lookup",
               name().c_str());
    FlowAddress addr = lookup_(request.flow);

    net::TcpHeader tcp;
    tcp.srcPort = addr.tuple.localPort;
    tcp.dstPort = addr.tuple.remotePort;
    tcp.seq = request.seq;
    tcp.ack = request.ack;
    tcp.flags = request.flags;
    tcp.window = request.window;
    tcp.mssOption = request.mssOption;

    net::PayloadBuffer payload;
    sim::Tick data_ready = now();
    if (request.windowProbe) {
        // One byte of already-queued data keeps the probe legal.
        payload.resize(1);
        if (payload_)
            data_ready =
                payload_->fetchPayload(request.flow, request.seq, payload);
    }

    net::Packet pkt = net::Packet::makeTcp(addr.localMac, addr.peerMac,
                                           addr.tuple.localIp,
                                           addr.tuple.remoteIp, tcp,
                                           std::move(payload));
    ++controls_;
    F4T_TRACE(PacketGenerator, "%s: control flow=%u seq=%u ack=%u",
              name().c_str(), request.flow, request.seq, request.ack);
    sim::Tick slot = nextSlot();
    emit(std::move(pkt), slot > data_ready ? slot : data_ready);
}

} // namespace f4t::core
