#include "stalling_engine.hh"

namespace f4t::baseline
{

StallingEngine::StallingEngine(sim::Simulation &sim, std::string name,
                               sim::ClockDomain &domain,
                               const tcp::FpuProgram &program,
                               const StallingEngineConfig &config)
    : ClockedObject(sim, std::move(name), domain), program_(program),
      config_(config),
      processed_(sim.stats(), statName("eventsProcessed"),
                 "events processed (one at a time)"),
      stallCyclesTotal_(sim.stats(), statName("stallCycles"),
                        "cycles spent stalled for RMW atomicity")
{}

tcp::FlowId
StallingEngine::createSyntheticFlow(std::uint32_t peer_window)
{
    f4t_assert(tcbs_.size() < config_.maxFlows,
               "%s: SRAM full (%zu flows)", name().c_str(),
               config_.maxFlows);
    tcp::FlowId flow = nextFlow_++;

    tcp::Tcb tcb;
    tcb.flowId = flow;
    tcb.mss = config_.mss;
    tcb.iss = tcp::FpuProgram::initialSequence(flow);
    tcb.sndUna = tcb.iss;
    tcb.sndUnaProcessed = tcb.iss;
    tcb.sndNxt = tcb.iss + 1;
    tcb.req = tcb.iss + 1;
    tcb.lastAckNotified = tcb.iss + 1;
    tcb.state = tcp::ConnState::established;
    tcb.sndWnd = peer_window;
    tcb.cwnd = peer_window;
    tcb.ssthresh = peer_window;
    tcb.ccPhase = tcp::CcPhase::congestionAvoidance;
    tcb.rcvNxt = 1;
    tcb.userRead = 1;
    tcb.lastAckSent = 1;
    tcb.lastRcvNotified = 1;
    tcbs_.emplace(flow, tcb);
    return flow;
}

void
StallingEngine::injectEvent(const tcp::TcpEvent &event)
{
    input_.push_back(event);
    activate();
}

bool
StallingEngine::tick()
{
    if (busy_ > 0) {
        --busy_;
        ++stallCyclesTotal_;
        return true;
    }
    if (input_.empty())
        return false;

    tcp::TcpEvent event = input_.front();
    input_.pop_front();

    auto it = tcbs_.find(event.flow);
    f4t_assert(it != tcbs_.end(), "%s: event for unknown flow %u",
               name().c_str(), event.flow);
    tcp::Tcb &tcb = it->second;

    // The whole RMW is atomic: accumulate, merge, process, write back,
    // then stall until the pipeline drains.
    tcp::EventRecord record;
    tcp::accumulateEvent(record, tcb, event);
    tcp::Tcb merged = tcp::merge(tcb, record);

    tcp::FpuActions actions;
    program_.process(merged, now() / 1'000'000, actions);
    tcb = merged;
    ++processed_;

    if (actionSink_ && !actions.empty())
        actionSink_(event.flow, std::move(actions));

    busy_ = config_.stallCycles + config_.fpuLatency - 1;
    return true;
}

} // namespace f4t::baseline
