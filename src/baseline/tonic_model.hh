/**
 * @file
 * Analytic model of TONIC [18] — the "w/o-RMW" reference design of
 * Fig. 2 and the connectivity comparison point of Fig. 13.
 *
 * TONIC avoids RMW stalls by forcing every RMW to complete in one
 * 10 ns cycle (100 MHz): it transfers exactly one fixed 128 B segment
 * per cycle, stores TCBs only in SRAM (~1 K flows), and admits only
 * single-cycle TCP algorithms. The idealized "w/o-RMW" variant used in
 * the paper's motivation additionally assumes arbitrary-length
 * requests — one request per cycle regardless of size.
 */

#ifndef F4T_BASELINE_TONIC_MODEL_HH
#define F4T_BASELINE_TONIC_MODEL_HH

#include <cstddef>

namespace f4t::baseline
{

struct TonicModel
{
    double clockHz = 100e6;
    std::size_t segmentBytes = 128;
    std::size_t maxFlows = 1024;
    unsigned maxAlgorithmLatencyCycles = 1;

    /** Idealized w/o-RMW: one arbitrary-length request per cycle. */
    double
    idealRequestsPerSecond() const
    {
        return clockHz;
    }

    /** Idealized w/o-RMW goodput for a given request size. */
    double
    idealThroughputBps(std::size_t request_bytes) const
    {
        return clockHz * static_cast<double>(request_bytes) * 8.0;
    }

    /**
     * Native TONIC: requests are chopped into fixed segments; a
     * request needs ceil(size / 128) cycles.
     */
    double
    nativeRequestsPerSecond(std::size_t request_bytes) const
    {
        std::size_t segments =
            (request_bytes + segmentBytes - 1) / segmentBytes;
        return clockHz / static_cast<double>(segments);
    }

    double
    nativeThroughputBps(std::size_t request_bytes) const
    {
        return nativeRequestsPerSecond(request_bytes) *
               static_cast<double>(request_bytes) * 8.0;
    }

    /** Can TONIC run an algorithm with this processing latency? */
    bool
    supportsAlgorithm(unsigned latency_cycles) const
    {
        return latency_cycles <= maxAlgorithmLatencyCycles;
    }
};

} // namespace f4t::baseline

#endif // F4T_BASELINE_TONIC_MODEL_HH
