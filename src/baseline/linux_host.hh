/**
 * @file
 * The Linux TCP baseline host: the comparison system of Figs. 1, 8,
 * 10-13.
 *
 * One SoftTcpStack per CPU core (flows are partitioned per core as
 * RSS + SO_REUSEPORT would), with the calibrated Linux cost model
 * charging every stack operation to the owning core. Received packets
 * are demultiplexed by connection ownership; SYNs for listening ports
 * round-robin across cores.
 *
 * The host also provides the Fig. 12 latency jitter model: Linux
 * wakeups ride on scheduler/softirq timing with a heavy tail, which
 * the jitterDelay() sampler reproduces; the F4T library polls and has
 * none of it.
 */

#ifndef F4T_BASELINE_LINUX_HOST_HH
#define F4T_BASELINE_LINUX_HOST_HH

#include <memory>
#include <vector>

#include "host/cost_model.hh"
#include "host/cpu.hh"
#include "net/link.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "tcp/soft_tcp.hh"

namespace f4t::baseline
{

struct LinuxHostConfig
{
    net::Ipv4Address ip;
    net::MacAddress mac;
    std::size_t cores = 8;
    tcp::SoftCcAlgo cc = tcp::SoftCcAlgo::cubic; ///< Linux default
    bool chargeCosts = true;   ///< apply the calibrated cycle costs
    bool latencyJitter = true; ///< apply the Fig. 12 wakeup jitter
    std::uint64_t seed = 42;
    std::size_t sendBufBytes = 512 * 1024;
    std::size_t recvBufBytes = 512 * 1024;
};

class LinuxHost : public sim::SimObject, public net::PacketSink
{
  public:
    LinuxHost(sim::Simulation &sim, std::string name,
              const LinuxHostConfig &config);

    std::size_t coreCount() const { return cores_->size(); }
    host::CpuCore &core(std::size_t i) { return cores_->core(i); }
    host::CpuComplex &cpu() { return *cores_; }
    tcp::SoftTcpStack &stack(std::size_t i) { return *stacks_.at(i); }

    /** Attach the transmit path of the NIC link. */
    void setTransmit(std::function<void(net::Packet &&)> tx);

    /** Static ARP entry (directly cabled testbed). */
    void addArpEntry(net::Ipv4Address ip, net::MacAddress mac);

    /** NIC receive path: demux to the owning core's stack. */
    void receivePacket(net::Packet &&pkt) override;

    /**
     * Sample the wakeup jitter applied between kernel readiness and
     * the application observing it (zero when jitter is disabled).
     */
    sim::Tick jitterDelay();

    const LinuxHostConfig &config() const { return config_; }

    /** Toggle the wakeup jitter model (e.g., off for client machines
     *  whose latency is not under study). */
    void setLatencyJitter(bool enabled) { config_.latencyJitter = enabled; }

  private:
    LinuxHostConfig config_;
    std::unique_ptr<host::CpuComplex> cores_;
    std::vector<std::unique_ptr<tcp::SoftTcpStack>> stacks_;
    std::size_t nextListenerCore_ = 0;
    sim::Random rng_;
};

} // namespace f4t::baseline

#endif // F4T_BASELINE_LINUX_HOST_HH
