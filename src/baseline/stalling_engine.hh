/**
 * @file
 * The w-RMW baseline accelerator (Sections 3.1 and 5.4): an FPGA TCP
 * engine in the style of Limago [44] that keeps TCP atomicity by
 * stalling between events of any flow.
 *
 * It runs at 322 MHz and occupies the pipeline for
 * (stallCycles + fpuLatency) cycles per event — 17 cycles with the
 * reference single-cycle algorithm, reproducing the ~19 M events/s
 * ceiling the paper attributes to RMW stalls. Functionally it applies
 * exactly the same event accumulation and FPU program as F4T, so the
 * two designs differ only in their processing architecture — which is
 * the paper's point.
 */

#ifndef F4T_BASELINE_STALLING_ENGINE_HH
#define F4T_BASELINE_STALLING_ENGINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "sim/simulation.hh"
#include "tcp/fpu_program.hh"
#include "tcp/tcb.hh"

namespace f4t::baseline
{

struct StallingEngineConfig
{
    /** Cycles of stall per event on top of the processing latency. */
    unsigned stallCycles = 16;
    /** TCP algorithm processing latency (17 total at the default 1). */
    unsigned fpuLatency = 1;
    std::size_t maxFlows = 1024; ///< SRAM-only designs support ~1 K
    std::uint16_t mss = 1460;
};

class StallingEngine : public sim::ClockedObject
{
  public:
    using ActionSink =
        std::function<void(tcp::FlowId, tcp::FpuActions &&)>;

    StallingEngine(sim::Simulation &sim, std::string name,
                   sim::ClockDomain &domain,
                   const tcp::FpuProgram &program,
                   const StallingEngineConfig &config);

    void setActionSink(ActionSink sink) { actionSink_ = std::move(sink); }

    /** A pre-established flow with a wide-open window. */
    tcp::FlowId createSyntheticFlow(std::uint32_t peer_window = 1u << 30);

    /** Queue an event; the engine stalls between each one. */
    void injectEvent(const tcp::TcpEvent &event);

    std::uint64_t eventsProcessed() const { return processed_.value(); }
    std::size_t backlog() const { return input_.size(); }

    /** Occupancy per event in cycles (for analytic cross-checks). */
    unsigned cyclesPerEvent() const
    {
        return config_.stallCycles + config_.fpuLatency;
    }

    const tcp::Tcb &tcb(tcp::FlowId flow) const { return tcbs_.at(flow); }

  protected:
    bool tick() override;

  private:
    const tcp::FpuProgram &program_;
    StallingEngineConfig config_;
    ActionSink actionSink_;

    std::deque<tcp::TcpEvent> input_;
    std::unordered_map<tcp::FlowId, tcp::Tcb> tcbs_;
    tcp::FlowId nextFlow_ = 0;
    unsigned busy_ = 0;

    sim::Counter processed_;
    sim::Counter stallCyclesTotal_;
};

} // namespace f4t::baseline

#endif // F4T_BASELINE_STALLING_ENGINE_HH
