#include "linux_host.hh"

namespace f4t::baseline
{

namespace
{

tcp::SoftCostModel
linuxCostModel()
{
    tcp::SoftCostModel costs;
    costs.sendSyscall = host::LinuxCosts::sendSyscall;
    costs.sendPerByte = host::LinuxCosts::sendPerByte;
    costs.recvSyscall = host::LinuxCosts::recvSyscall;
    costs.recvPerByte = host::LinuxCosts::recvPerByte;
    costs.txSegment = host::LinuxCosts::txSegment;
    costs.rxSegment = host::LinuxCosts::rxSegment;
    costs.rxPerByte = host::LinuxCosts::rxPerByte;
    costs.connectionSetup = host::LinuxCosts::connectionSetup;
    costs.kernelShare = host::LinuxCosts::kernelShare;
    return costs;
}

} // namespace

LinuxHost::LinuxHost(sim::Simulation &sim, std::string name,
                     const LinuxHostConfig &config)
    : SimObject(sim, std::move(name)), config_(config), rng_(config.seed)
{
    cores_ = std::make_unique<host::CpuComplex>(sim, statName("cpu"),
                                                config_.cores);

    for (std::size_t i = 0; i < config_.cores; ++i) {
        tcp::SoftTcpConfig stack_config;
        stack_config.ip = config_.ip;
        stack_config.mac = config_.mac;
        stack_config.cc = config_.cc;
        stack_config.sendBufBytes = config_.sendBufBytes;
        stack_config.recvBufBytes = config_.recvBufBytes;
        stack_config.ephemeralPortBase =
            static_cast<std::uint16_t>(32768 + i * 2048);
        if (config_.chargeCosts)
            stack_config.costs = linuxCostModel();
        stacks_.push_back(std::make_unique<tcp::SoftTcpStack>(
            sim, statName("stack" + std::to_string(i)), stack_config));
        stacks_.back()->setAccountant(&cores_->core(i));
    }
}

void
LinuxHost::setTransmit(std::function<void(net::Packet &&)> tx)
{
    for (auto &stack : stacks_)
        stack->setTransmit(tx);
}

void
LinuxHost::addArpEntry(net::Ipv4Address ip, net::MacAddress mac)
{
    for (auto &stack : stacks_)
        stack->addArpEntry(ip, mac);
}

void
LinuxHost::receivePacket(net::Packet &&pkt)
{
    if (!pkt.isTcp() || !pkt.ip)
        return;

    const net::TcpHeader &tcp = pkt.tcp();
    net::FourTuple tuple{pkt.ip->dst, tcp.dstPort, pkt.ip->src,
                         tcp.srcPort};

    for (auto &stack : stacks_) {
        if (stack->ownsTuple(tuple)) {
            stack->receivePacket(std::move(pkt));
            return;
        }
    }

    // New connection: SO_REUSEPORT spreads SYNs over listening cores.
    if (tcp.hasFlag(net::TcpFlags::syn) && !tcp.hasFlag(net::TcpFlags::ack)) {
        for (std::size_t k = 0; k < stacks_.size(); ++k) {
            std::size_t i = (nextListenerCore_ + k) % stacks_.size();
            if (stacks_[i]->listening(tcp.dstPort)) {
                nextListenerCore_ = i + 1;
                stacks_[i]->receivePacket(std::move(pkt));
                return;
            }
        }
    }
    // No owner and no listener: the first stack answers with RST.
    stacks_.front()->receivePacket(std::move(pkt));
}

sim::Tick
LinuxHost::jitterDelay()
{
    if (!config_.latencyJitter)
        return 0;
    using J = host::LinuxLatencyJitter;
    double us;
    if (rng_.chance(J::spikeProbability)) {
        us = J::spikeMinUs +
             rng_.uniform() * (J::spikeMaxUs - J::spikeMinUs);
    } else {
        // Log-normal around the median.
        us = rng_.logNormal(std::log(J::medianUs), J::sigma);
    }
    return sim::microsecondsToTicks(us);
}

} // namespace f4t::baseline
